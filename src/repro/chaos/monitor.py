"""Online safety/liveness invariant checking over the trace stream.

The :class:`InvariantMonitor` implements the :class:`repro.obs.bus.TraceSink`
protocol, so attaching it is one ``bus.add_sink(monitor)`` — it then
sees every structured event the instant it is emitted and checks the
paper's core properties *while the scenario runs*:

``unique-certificate``
    At most one certified block per round across all honest nodes
    (section 5's safety theorem). Two honest ``round_commit`` events for
    the same round with different block hashes is a fork, full stop.
``monotonic-rounds``
    A node's committed rounds strictly increase — commitments are never
    rolled back (catch-up replaces a *shorter* chain only).
``liveness``
    After the last fault heals at ``heal_time``, some honest node must
    commit a new block within ``liveness_bound`` simulated seconds
    (section 3's weak-synchrony recovery promise). Checked at
    :meth:`finish`, which also catches the degenerate stalled-clock
    trace: time advanced past the bound with no commit at all.

Post-run (when actual node objects are available),
:func:`audit_chains` re-verifies what events alone cannot show: that
committed prefixes do not fork, that each chain's seed chain is exactly
the section 5.2 recurrence (block seed when the VRF proof verifies,
fallback hash otherwise), and that stored certificates certify the
blocks actually committed.

The monitor is a pure observer: it never touches the bus, the clock, or
any randomness, so a monitored run is byte-identical to an unmonitored
one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sortition.seed import fallback_seed, verify_seed


@dataclass(frozen=True)
class Violation:
    """One invariant breach, stamped with the simulated time."""

    invariant: str
    t: float
    detail: str

    def to_dict(self) -> dict:
        return {"invariant": self.invariant, "t": self.t,
                "detail": self.detail}


class InvariantMonitor:
    """TraceBus sink asserting the paper's invariants online."""

    def __init__(self, *, liveness_bound: float,
                 heal_time: float = 0.0,
                 honest: frozenset[int] | None = None) -> None:
        if liveness_bound <= 0:
            raise ValueError("liveness_bound must be positive")
        self.liveness_bound = liveness_bound
        self.heal_time = heal_time
        #: Node indices whose commits count; ``None`` trusts every node
        #: (chaos scenarios run honest deployments — faults live in the
        #: network, not the nodes).
        self.honest = honest
        self.violations: list[Violation] = []
        #: round -> {block_hash_hex: (t, node) of first commit}.
        self._round_hashes: dict[int, dict[str, tuple[float, int]]] = {}
        #: node -> highest committed round seen.
        self._last_round: dict[int, int] = {}
        self._commit_times: list[float] = []
        self.events_seen = 0
        self.finished = False

    # -- TraceSink protocol --------------------------------------------

    def write_event(self, record: dict) -> None:
        self.events_seen += 1
        if record.get("kind") != "round_commit":
            return
        node = record.get("node")
        round_number = record.get("round")
        block_hash = record.get("block_hash")
        t = float(record.get("t", 0.0))
        if node is None or round_number is None or block_hash is None:
            return
        if self.honest is not None and node not in self.honest:
            return
        self._commit_times.append(t)
        hashes = self._round_hashes.setdefault(round_number, {})
        if block_hash not in hashes:
            if hashes:
                other_hash, (other_t, other_node) = next(iter(hashes.items()))
                self.violations.append(Violation(
                    invariant="unique-certificate", t=t,
                    detail=(f"round {round_number}: node {node} committed "
                            f"{block_hash[:16]} at t={t:.2f} but node "
                            f"{other_node} committed {other_hash[:16]} "
                            f"at t={other_t:.2f}")))
            hashes[block_hash] = (t, node)
        last = self._last_round.get(node)
        if last is not None and round_number <= last:
            self.violations.append(Violation(
                invariant="monotonic-rounds", t=t,
                detail=(f"node {node} committed round {round_number} "
                        f"after already committing round {last}")))
        else:
            self._last_round[node] = round_number

    def write_snapshot(self, snapshot: dict) -> None:
        """Snapshots carry counters, not events; nothing to check."""

    def close(self) -> None:
        """The bus owns the run's end; liveness is checked by finish()."""

    # -- verdict-time checks -------------------------------------------

    def feed(self, events: list[dict]) -> None:
        """Replay a recorded trace through the online checks."""
        for record in events:
            self.write_event(record)

    def commits_in_window(self, start: float, end: float) -> int:
        return sum(1 for t in self._commit_times if start < t <= end)

    def finish(self, now: float) -> list[Violation]:
        """Evaluate liveness at the end of the run and return everything.

        ``now`` is the simulated clock when the run stopped (for a
        recorded trace, the last event's timestamp).
        """
        self.finished = True
        deadline = self.heal_time + self.liveness_bound
        if now >= deadline:
            if self.heal_time > 0.0:
                window = self.commits_in_window(self.heal_time, deadline)
                if window == 0:
                    self.violations.append(Violation(
                        invariant="liveness", t=now,
                        detail=(f"no honest commit within "
                                f"{self.liveness_bound:.0f}s of the last "
                                f"heal at t={self.heal_time:.2f} (clock "
                                f"reached t={now:.2f})")))
            elif not self._commit_times:
                self.violations.append(Violation(
                    invariant="liveness", t=now,
                    detail=(f"fault-free run reached t={now:.2f} with no "
                            f"commit at all (bound "
                            f"{self.liveness_bound:.0f}s)")))
        return list(self.violations)


def audit_chains(nodes, *, backend, now: float,
                 skip: frozenset[int] = frozenset()) -> list[Violation]:
    """Post-run structural audit of the actual replicas.

    Checks what the event stream cannot: committed-prefix consistency
    against the longest honest chain, the section 5.2 seed-chain
    recurrence, and certificate/block binding. ``skip`` names nodes
    excluded from the audit (permanently crashed ones hold an honest but
    possibly short prefix — they are still checked for prefix
    consistency, never for length).
    """
    violations: list[Violation] = []
    live = [node for node in nodes if node.index not in skip]
    if not live:
        return violations
    reference = max(live, key=lambda node: node.chain.height)
    for node in nodes:
        chain = node.chain
        # Committed prefixes must agree block for block (no forks).
        common = min(chain.height, reference.chain.height)
        for round_number in range(1, common + 1):
            mine = chain.block_at(round_number).block_hash
            theirs = reference.chain.block_at(round_number).block_hash
            if mine != theirs:
                violations.append(Violation(
                    invariant="prefix-consistency", t=now,
                    detail=(f"node {node.index} round {round_number}: "
                            f"{mine.hex()[:16]} != node "
                            f"{reference.index}'s {theirs.hex()[:16]}")))
                break
        # Seed chain: replay the recurrence and compare (section 5.2).
        for round_number in range(1, chain.height + 1):
            block = chain.block_at(round_number)
            previous = chain.seed_of_round(round_number - 1)
            if block.is_empty or not verify_seed(
                    backend, block.proposer, block.seed, block.seed_proof,
                    previous, round_number):
                expected = fallback_seed(previous, round_number)
            else:
                expected = block.seed
            if chain.seed_of_round(round_number) != expected:
                violations.append(Violation(
                    invariant="seed-chain", t=now,
                    detail=(f"node {node.index} round {round_number}: "
                            f"stored seed diverges from the "
                            f"H(seed||r) recurrence")))
                break
        # Certificates must certify the block actually committed.
        for round_number in range(1, chain.height + 1):
            for certificate in (chain.certificate_at(round_number),
                                chain.final_certificate_at(round_number)):
                value = getattr(certificate, "value", None)
                if value is not None and value != chain.block_at(
                        round_number).block_hash:
                    violations.append(Violation(
                        invariant="certificate-binding", t=now,
                        detail=(f"node {node.index} round {round_number}: "
                                f"certificate certifies a different "
                                f"block")))
    return violations


def audit_ingress(nodes, network, *, now: float,
                  skip: frozenset[int] = frozenset()) -> list[Violation]:
    """Post-run bounded-buffer audit: high-water marks within budgets.

    Under admission control every honest node's vote buffer and every
    honest egress lane must have stayed inside its configured budget for
    the whole run — a high-water mark above budget means the bound was
    enforced too late (or not at all) and a flood grew state without
    limit. ``skip`` names the attacker nodes (their own buffers are not
    part of the robustness claim) plus permanently crashed ones.
    """
    violations: list[Violation] = []
    for node in nodes:
        if node.index in skip:
            continue
        budget = getattr(node.buffer, "budget_messages", None)
        high_water = getattr(node.buffer, "high_water", 0)
        if budget is not None and high_water > budget:
            violations.append(Violation(
                invariant="ingress-bounds", t=now,
                detail=(f"node {node.index}: vote-buffer high water "
                        f"{high_water} exceeded budget {budget}")))
    for index, interface in enumerate(network.interfaces):
        if index in skip:
            continue
        lane_budget = getattr(interface, "lane_budget", None)
        lane_high = getattr(interface, "egress_high_water", 0)
        if lane_budget is not None and lane_high > lane_budget:
            violations.append(Violation(
                invariant="ingress-bounds", t=now,
                detail=(f"node {index}: egress-lane high water "
                        f"{lane_high} exceeded budget {lane_budget}")))
    return violations
