"""CLI: run a chaos scenario (file, builtin, generated, or a sweep).

Examples::

    # The canonical scripted smoke: split-brain, stall, heal, commit.
    python -m repro.chaos --builtin partition-heal --trace out/chaos.jsonl

    # The same engine against real processes: SIGKILL + partition on a
    # live 5-process cluster, rejoin via gossip catch-up.
    python -m repro.chaos --builtin kill-partition --substrate live \
        --runtime-dir out/live-chaos --verdict out/verdict.json

    # A scenario file (see docs/CHAOS.md for the format).
    python -m repro.chaos my_scenario.json --verdict out/verdict.json

    # One generated scenario for a seed.
    python -m repro.chaos --seed 7

    # A sweep of generated scenarios over consecutive seeds.
    python -m repro.chaos --sweep 20 --base-seed 100 --verdict out/sweep.json

Exit status 0 means every invariant held in every run; 1 means at least
one violation (details are printed and, with ``--verdict``, saved).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.chaos.generate import generate_scenario
from repro.chaos.runner import ChaosVerdict, run_scenario
from repro.chaos.scenario import (
    ScenarioScript,
    flood_recovery_scenario,
    kill_partition_scenario,
    partition_heal_scenario,
)

_BUILTINS = ("partition-heal", "flood", "kill-partition")


def _load_builtin(name: str, args: argparse.Namespace) -> ScenarioScript:
    if name == "partition-heal":
        return partition_heal_scenario(num_users=args.users or 16,
                                       seed=args.base_seed)
    if name == "flood":
        return flood_recovery_scenario(num_users=args.users or 15,
                                       seed=args.base_seed)
    if name == "kill-partition":
        return kill_partition_scenario(num_users=args.users or 5,
                                       seed=args.base_seed)
    raise SystemExit(f"unknown builtin {name!r} (have: {_BUILTINS})")


def _report(verdict: ChaosVerdict) -> None:
    name = verdict.scenario["name"]
    state = "OK" if verdict.ok else "VIOLATED"
    print(f"[{state}] {name}: heights={verdict.heights} "
          f"t={verdict.sim_seconds:.1f}s events={verdict.events_seen}")
    for violation in verdict.violations:
        print(f"  - {violation['invariant']} @t={violation['t']:.2f}: "
              f"{violation['detail']}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Run chaos scenarios with online invariant checking.")
    parser.add_argument("scenario", nargs="?",
                        help="path to a ScenarioScript JSON file")
    parser.add_argument("--builtin", choices=_BUILTINS,
                        help="run a named built-in scenario")
    parser.add_argument("--seed", type=int,
                        help="generate and run one scenario for this seed")
    parser.add_argument("--sweep", type=int, metavar="K",
                        help="generate and run K scenarios over "
                             "consecutive seeds")
    parser.add_argument("--base-seed", type=int, default=31,
                        help="first seed for --sweep / builtin seed "
                             "(default 31)")
    parser.add_argument("--users", type=int, default=None,
                        help="users for generated/builtin scenarios")
    parser.add_argument("--rounds", type=int, default=2,
                        help="target rounds for generated scenarios")
    parser.add_argument("--trace", metavar="PATH",
                        help="write the full JSONL event trace here "
                             "(per-seed suffix in sweep mode; on the "
                             "live substrate the merged trace is "
                             "copied here)")
    parser.add_argument("--verdict", metavar="PATH",
                        help="write the verdict JSON here")
    parser.add_argument("--substrate", choices=("sim", "live"),
                        default="sim",
                        help="execution substrate: deterministic "
                             "simulation (default) or real node "
                             "processes with real SIGKILLs and severed "
                             "sockets")
    parser.add_argument("--runtime-dir", metavar="DIR",
                        help="live substrate: directory for per-node "
                             "artifacts (configs, logs, traces, merged "
                             "trace); default is a fresh temp dir")
    parser.add_argument("--transport", choices=("uds", "tcp"),
                        default="uds",
                        help="live substrate: gossip/control transport "
                             "(default uds)")
    args = parser.parse_args(argv)

    chosen = [bool(args.scenario), args.builtin is not None,
              args.seed is not None, args.sweep is not None]
    if sum(chosen) != 1:
        parser.error("pick exactly one of: a scenario file, --builtin, "
                     "--seed, or --sweep")

    scripts: list[ScenarioScript] = []
    if args.scenario:
        scripts.append(ScenarioScript.from_json(
            Path(args.scenario).read_text(encoding="utf-8")))
    elif args.builtin:
        scripts.append(_load_builtin(args.builtin, args))
    elif args.seed is not None:
        scripts.append(generate_scenario(args.seed,
                                         num_users=args.users or 10,
                                         rounds=args.rounds))
    else:
        for k in range(args.sweep):
            scripts.append(generate_scenario(args.base_seed + k,
                                             num_users=args.users or 10,
                                             rounds=args.rounds))

    verdicts: list[ChaosVerdict] = []
    for script in scripts:
        trace_path = args.trace
        if trace_path is not None:
            path = Path(trace_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            if len(scripts) > 1:
                trace_path = str(path.with_name(
                    f"{path.stem}-seed{script.seed}"
                    f"{path.suffix or '.jsonl'}"))
        if args.substrate == "live":
            from repro.chaos.live import run_live_scenario
            verdict = run_live_scenario(script,
                                        runtime_dir=args.runtime_dir,
                                        transport=args.transport)
            merged = verdict.cluster.merged_trace_path
            if trace_path is not None:
                Path(trace_path).write_bytes(Path(merged).read_bytes())
        else:
            merged = None
            verdict = run_scenario(script, trace_path=trace_path)
        _report(verdict)
        if merged is not None:
            print(f"  merged trace: {merged}")
        verdicts.append(verdict)

    all_ok = all(verdict.ok for verdict in verdicts)
    if args.verdict:
        out = Path(args.verdict)
        out.parent.mkdir(parents=True, exist_ok=True)
        if len(verdicts) == 1:
            out.write_text(verdicts[0].to_json() + "\n", encoding="utf-8")
        else:
            out.write_text(json.dumps(
                {"ok": all_ok,
                 "runs": [verdict.to_dict() for verdict in verdicts]},
                indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"{len(verdicts)} scenario(s): "
          f"{'all green' if all_ok else 'VIOLATIONS FOUND'}")
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
