"""Execute one chaos scenario end to end and render a verdict.

:func:`run_scenario` wires the whole stack: a :class:`~repro.obs.TraceBus`
with the :class:`~repro.chaos.monitor.InvariantMonitor` attached as an
online sink (plus an optional JSONL trace file), a deterministic
:class:`~repro.experiments.harness.Simulation`, and a
:class:`~repro.chaos.faults.FaultInjector` compiling the script onto the
sim clock. The run stops when every node that is not permanently crashed
has committed the scenario's target rounds — or when the derived time
limit expires, which the verdict then explains as a liveness or
convergence violation rather than a silent timeout.

Verdicts are deterministic: the simulation is seeded, the fault RNG is
seeded, and :meth:`ChaosVerdict.to_json` serializes with sorted keys —
re-running the same script yields byte-identical JSON (tested).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.chaos.faults import FaultInjector
from repro.chaos.monitor import (
    InvariantMonitor,
    Violation,
    audit_chains,
    audit_ingress,
)
from repro.chaos.scenario import ScenarioScript
from repro.experiments.harness import Simulation, SimulationConfig
from repro.obs.bus import TraceBus
from repro.obs.sink import JsonlTraceSink

import json


@dataclass
class ChaosVerdict:
    """The outcome of one scenario run: green or red, with receipts."""

    scenario: dict
    ok: bool
    violations: list[dict]
    #: Final chain height per node (index-ordered).
    heights: list[int]
    converged: bool
    sim_seconds: float
    events_seen: int
    #: Summary of the online reference-machine check (repro.conformance)
    #: — its violations are merged into ``violations`` (prefixed
    #: ``conformance:``) and gate ``ok`` like any invariant.
    conformance: dict | None = None
    #: The live simulation, for tests and post-mortems; never serialized.
    sim: Simulation | None = field(default=None, repr=False, compare=False)
    #: The :class:`repro.live.cluster.LiveCluster` behind a live-substrate
    #: verdict (see :mod:`repro.chaos.live`); never serialized.
    cluster: object | None = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "violations": self.violations,
            "heights": self.heights,
            "converged": self.converged,
            "sim_seconds": self.sim_seconds,
            "events_seen": self.events_seen,
            "conformance": self.conformance,
        }

    def to_json(self) -> str:
        """Stable serialization: same scenario, same bytes."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _derive_time_limit(script: ScenarioScript) -> float:
    """A generous ceiling: per-round worst case + fault tail + liveness."""
    params = SimulationConfig().params
    per_round = (params.lambda_block
                 + params.lambda_step * params.max_steps)
    return (per_round * (script.rounds + 1)
            + script.last_heal_time() + script.liveness_bound)


def run_scenario(script: ScenarioScript, *,
                 trace_path: str | None = None,
                 sim_overrides: dict | None = None) -> ChaosVerdict:
    """Run ``script`` and return its verdict (never raises on red).

    ``sim_overrides`` replaces fields of the derived
    :class:`SimulationConfig` (e.g. ``{"relay_damping": False}`` or
    ``{"bandwidth_bps": None}``) — the damping-equivalence suite runs
    the same scenario under several deployments this way. Scenario
    fields (``num_users``, ``seed``) stay script-owned.
    """
    script.validate()
    bus = TraceBus()
    monitor = InvariantMonitor(liveness_bound=script.liveness_bound,
                               heal_time=script.last_heal_time())
    bus.add_sink(monitor)
    if trace_path is not None:
        bus.add_sink(JsonlTraceSink(trace_path))

    config = SimulationConfig(num_users=script.num_users,
                              seed=script.seed)
    if sim_overrides:
        config = dataclasses.replace(config, **sim_overrides)
    sim = Simulation(config, obs=bus)
    injector = FaultInjector(sim, script)
    injector.install()
    if script.payments:
        sim.submit_payments(script.payments)

    for node in sim.nodes:
        node.start(script.rounds)
    skip = injector.permanently_crashed
    survivors = [node for node in sim.nodes if node.index not in skip]

    def finished() -> bool:
        return all(node.chain.height >= script.rounds
                   for node in survivors)

    limit = (script.time_limit if script.time_limit is not None
             else _derive_time_limit(script))
    sim.env.run(until=limit, stop_when=finished)
    now = sim.env.now

    violations: list[Violation] = []
    violations.extend(monitor.finish(now))
    violations.extend(audit_chains(sim.nodes, backend=sim.backend,
                                   now=now, skip=skip))
    if sim.quarantine_directory is not None:
        # Bounded-buffer invariant: honest high-water marks must have
        # stayed inside their budgets (attackers audit nothing — their
        # buffers are not part of the robustness claim).
        violations.extend(audit_ingress(
            sim.nodes, sim.network, now=now,
            skip=skip | script.attacker_nodes()))
    # The harness auto-attached a ConformanceMonitor (obs bus present):
    # reference-machine breaches are scenario violations like any other.
    conformance_section = None
    if sim.conformance is not None:
        conformance_verdict = sim.conformance.verdict()
        conformance_section = {
            "ok": conformance_verdict.ok,
            "events_checked": conformance_verdict.events_checked,
            "nodes": conformance_verdict.nodes,
            "violations": len(conformance_verdict.violations),
        }
        for breach in conformance_verdict.violations:
            violations.append(Violation(
                invariant="conformance:" + breach["rule"],
                t=breach["t"],
                detail=(f"node {breach['node']} round {breach['round']} "
                        f"step {breach['step']} ({breach['kind']} in "
                        f"phase {breach['phase']}): {breach['detail']}")))
    laggards = [node.index for node in survivors
                if node.chain.height < script.rounds]
    converged = not laggards
    if laggards:
        ellipsis = "..." if len(laggards) > 5 else ""
        violations.append(Violation(
            invariant="convergence", t=now,
            detail=(f"nodes {laggards[:5]}{ellipsis} below target height "
                    f"{script.rounds} when the run ended at t={now:.2f}")))
    bus.close()

    # Deduplicate while preserving first-seen order (the liveness and
    # convergence checks can describe the same stall twice).
    seen: set[tuple] = set()
    unique = []
    for violation in violations:
        key = (violation.invariant, violation.detail)
        if key not in seen:
            seen.add(key)
            unique.append(violation)

    return ChaosVerdict(
        scenario=script.to_dict(),
        ok=not unique,
        violations=[violation.to_dict() for violation in unique],
        heights=[node.chain.height for node in sim.nodes],
        converged=converged,
        sim_seconds=now,
        events_seen=monitor.events_seen,
        conformance=conformance_section,
        sim=sim,
    )
