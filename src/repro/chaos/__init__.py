"""Chaos scenario engine with online invariant checking.

Declarative fault timelines (:mod:`repro.chaos.scenario`) compiled onto
the simulation clock (:mod:`repro.chaos.faults`), watched live by a
TraceBus-sink invariant monitor (:mod:`repro.chaos.monitor`), generated
from seeds (:mod:`repro.chaos.generate`), and executed end to end with a
deterministic verdict (:mod:`repro.chaos.runner`). ``python -m
repro.chaos`` is the command-line entry point; docs/CHAOS.md is the
manual.
"""

# NOTE: repro.chaos.live is deliberately NOT imported here — it pulls in
# repro.live.cluster, which itself imports repro.chaos.scenario, and
# eagerly importing it would make ``import repro.live`` circular. Use
# ``from repro.chaos.live import run_live_scenario`` directly.
from repro.chaos.faults import FaultInjector, ShaperChain
from repro.chaos.generate import generate_scenario
from repro.chaos.monitor import (InvariantMonitor, Violation, audit_chains,
                                 audit_ingress)
from repro.chaos.runner import ChaosVerdict, run_scenario
from repro.chaos.scenario import (FAULT_KINDS, FaultAction, ScenarioError,
                                  ScenarioScript, flood_recovery_scenario,
                                  kill_partition_scenario,
                                  partition_heal_scenario)

__all__ = [
    "FAULT_KINDS",
    "ChaosVerdict",
    "FaultAction",
    "FaultInjector",
    "InvariantMonitor",
    "ScenarioError",
    "ScenarioScript",
    "ShaperChain",
    "Violation",
    "audit_chains",
    "audit_ingress",
    "flood_recovery_scenario",
    "generate_scenario",
    "kill_partition_scenario",
    "partition_heal_scenario",
    "run_scenario",
]
