"""Run a chaos scenario on the live substrate and render a verdict.

:func:`run_live_scenario` is the live twin of
:func:`repro.chaos.runner.run_scenario`: the same declarative
:class:`~repro.chaos.scenario.ScenarioScript`, the same
:class:`ChaosVerdict` out — but the faults are *real*. ``crash`` is a
SIGKILL delivered by the coordinator and a respawned process rejoining
over gossip catch-up; ``partition``/``loss``/``delay``/``dos`` are
per-link effects inside each node's
:class:`~repro.live.faults.LiveFaultPlane`
(:class:`~repro.live.cluster.LiveCluster` carries the schedule in its
``start`` broadcast).

Where the sim runner checks invariants online against live node
objects, this runner checks them *offline* against the cluster's merged
trace — the same :class:`~repro.chaos.monitor.InvariantMonitor` and
:class:`~repro.conformance.monitor.ConformanceMonitor` replayed over
the recorded events — plus a byte-level chain audit over the encoded
blocks each process reported (the live analogue of
:func:`~repro.chaos.monitor.audit_chains`'s prefix-consistency check:
on this substrate "no fork" literally means identical bytes).

Verdict determinism is necessarily weaker than the sim's: wall-clock
timings (``sim_seconds``, violation timestamps) vary run to run, but
the *judgments* — which invariants held, whether chains matched — are
stable for a healthy host.
"""

from __future__ import annotations

import dataclasses

from repro.chaos.monitor import InvariantMonitor, Violation
from repro.chaos.runner import ChaosVerdict
from repro.chaos.scenario import ScenarioError, ScenarioScript
from repro.conformance.monitor import ConformanceMonitor
from repro.experiments.config import SimulationConfig, SubstrateConfig
from repro.live.cluster import LIVE_SMOKE_PARAMS, LiveCluster
from repro.live.faults import unsupported_live_kinds
from repro.obs.sink import read_trace

#: The live smoke parameters with the step budget tightened: a node
#: stuck in a quorum-less round (its peers crashed or severed) burns
#: through its steps in ~9 wall seconds and reaches the
#: ConsensusHalted -> patient-resync path instead of spinning for the
#: sim-scale 30 steps. Committee sizes are untouched (W = 200 with the
#: 5 x 40 design point).
LIVE_CHAOS_PARAMS = dataclasses.replace(LIVE_SMOKE_PARAMS, max_steps=12)


def derive_live_time_limit(script: ScenarioScript) -> float:
    """Wall-clock ceiling: live per-round worst case + fault tail."""
    per_round = (LIVE_CHAOS_PARAMS.lambda_block
                 + LIVE_CHAOS_PARAMS.lambda_step
                 * LIVE_CHAOS_PARAMS.max_steps)
    return (per_round * (script.rounds + 1)
            + script.last_heal_time() + script.liveness_bound)


def _audit_block_bytes(cluster: LiveCluster, now: float) -> list[Violation]:
    """Byte-prefix consistency across every reporting node's chain."""
    violations: list[Violation] = []
    results = cluster.results
    if not results:
        return violations
    reference_index = max(results, key=lambda i: results[i]["height"])
    reference = results[reference_index]["blocks"]
    for index in sorted(results):
        blocks = results[index]["blocks"]
        common = min(len(blocks), len(reference))
        for round_number in range(common):
            if blocks[round_number] != reference[round_number]:
                violations.append(Violation(
                    invariant="prefix-consistency", t=now,
                    detail=(f"node {index} round {round_number + 1}: "
                            f"committed block bytes differ from node "
                            f"{reference_index}'s")))
                break
    return violations


def run_live_scenario(script: ScenarioScript, *,
                      runtime_dir: str | None = None,
                      transport: str = "uds",
                      sim_overrides: dict | None = None) -> ChaosVerdict:
    """Run ``script`` on a real process cluster; never raises on red.

    Orchestration failures (a node dying when not scripted to, a
    control-protocol breach) *do* raise — a broken harness is not a
    red verdict, it is no verdict.
    """
    script.validate()
    unsupported = unsupported_live_kinds(script.actions)
    if unsupported:
        raise ScenarioError(
            "scenario uses fault kind(s) with no live realization: "
            + ", ".join(sorted(unsupported))
            + " (run it on the sim substrate)")
    config = SimulationConfig(
        num_users=script.num_users,
        seed=script.seed,
        initial_balance=40,
        params=LIVE_CHAOS_PARAMS,
        substrate=SubstrateConfig(kind="live", transport=transport,
                                  runtime_dir=runtime_dir),
    )
    if sim_overrides:
        config = dataclasses.replace(config, **sim_overrides)
    cluster = LiveCluster(config, faults=script.actions)
    if script.payments:
        cluster.submit_payments(script.payments)
    limit = (script.time_limit if script.time_limit is not None
             else derive_live_time_limit(script))
    cluster.run_rounds(script.rounds, time_limit=limit)

    events, _ = read_trace(cluster.merged_trace_path)
    now = max((float(record.get("t", 0.0)) for record in events),
              default=0.0)
    monitor = InvariantMonitor(liveness_bound=script.liveness_bound,
                               heal_time=script.last_heal_time())
    monitor.feed(events)
    violations: list[Violation] = list(monitor.finish(now))
    violations.extend(_audit_block_bytes(cluster, now))

    conformance = ConformanceMonitor()
    conformance.feed(events)
    conformance_verdict = conformance.verdict()
    conformance_section = {
        "ok": conformance_verdict.ok,
        "events_checked": conformance_verdict.events_checked,
        "nodes": conformance_verdict.nodes,
        "violations": len(conformance_verdict.violations),
    }
    for breach in conformance_verdict.violations:
        violations.append(Violation(
            invariant="conformance:" + breach["rule"],
            t=breach["t"],
            detail=(f"node {breach['node']} round {breach['round']} "
                    f"step {breach['step']} ({breach['kind']} in "
                    f"phase {breach['phase']}): {breach['detail']}")))

    permanently_gone = script.permanently_crashed()
    missing = [index for index in range(script.num_users)
               if index not in cluster.results
               and index not in permanently_gone]
    for index in missing:
        violations.append(Violation(
            invariant="convergence", t=now,
            detail=(f"node {index} delivered no result although it was "
                    f"not permanently crashed")))
    laggards = [index for index, result in sorted(cluster.results.items())
                if result["height"] < script.rounds]
    converged = not laggards and not missing
    if laggards:
        ellipsis = "..." if len(laggards) > 5 else ""
        violations.append(Violation(
            invariant="convergence", t=now,
            detail=(f"nodes {laggards[:5]}{ellipsis} below target height "
                    f"{script.rounds} when the run ended at t={now:.2f}")))

    seen: set[tuple] = set()
    unique = []
    for violation in violations:
        key = (violation.invariant, violation.detail)
        if key not in seen:
            seen.add(key)
            unique.append(violation)

    heights = [cluster.results[index]["height"]
               if index in cluster.results else None
               for index in range(script.num_users)]
    return ChaosVerdict(
        scenario=script.to_dict(),
        ok=not unique,
        violations=[violation.to_dict() for violation in unique],
        heights=heights,
        converged=converged,
        sim_seconds=now,
        events_seen=monitor.events_seen,
        conformance=conformance_section,
        cluster=cluster,
    )
