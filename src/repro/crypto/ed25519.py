"""Pure-Python Ed25519 (RFC 8032).

The paper's prototype signs all gossip messages with keys over Curve25519
(section 9). This module implements the Ed25519 signature scheme from
scratch: field arithmetic modulo ``2**255 - 19``, twisted Edwards point
operations in extended homogeneous coordinates, and the RFC 8032
sign/verify procedures. It is validated against the RFC 8032 test vectors
in the test suite.

This implementation favours clarity over speed; large-scale simulations use
the fast backend in :mod:`repro.crypto.backend` instead (mirroring the
paper's own substitution of verification work in its 500k-user experiment).
"""

from __future__ import annotations

from repro.common.errors import CryptoError, SignatureError
from repro.crypto.hashing import sha512

# --- Field and curve constants (RFC 8032, section 5.1) -------------------

#: Field prime p = 2^255 - 19.
P = 2**255 - 19
#: Group order q (a prime); the base point B has order q.
Q = 2**252 + 27742317777372353535851937790883648493
#: Edwards curve constant d = -121665/121666 mod p.
D = -121665 * pow(121666, P - 2, P) % P
#: sqrt(-1) mod p, used during point decompression.
SQRT_M1 = pow(2, (P - 1) // 4, P)

# Extended homogeneous coordinates: a point is (X, Y, Z, T) with
# x = X/Z, y = Y/Z, x*y = T/Z.
_Point = tuple[int, int, int, int]

#: The neutral element.
IDENTITY: _Point = (0, 1, 1, 0)


def _point_from_affine(x: int, y: int) -> _Point:
    return (x % P, y % P, 1, (x * y) % P)


# Base point B (RFC 8032): y = 4/5, x recovered with even sign.
_BY = 4 * pow(5, P - 2, P) % P


def _recover_x(y: int, sign: int) -> int:
    """Solve x^2 = (y^2 - 1) / (d y^2 + 1) mod p; raise if no root."""
    if y >= P:
        raise CryptoError("y coordinate out of range")
    x2 = (y * y - 1) * pow(D * y * y + 1, P - 2, P) % P
    if x2 == 0:
        if sign:
            raise CryptoError("no square root with requested sign")
        return 0
    x = pow(x2, (P + 3) // 8, P)
    if (x * x - x2) % P != 0:
        x = x * SQRT_M1 % P
    if (x * x - x2) % P != 0:
        raise CryptoError("point decompression failed: not a square")
    if x & 1 != sign:
        x = P - x
    return x


BASE_POINT: _Point = _point_from_affine(_recover_x(_BY, 0), _BY)


def point_add(p1: _Point, p2: _Point) -> _Point:
    """Add two points (RFC 8032 'add' on extended coordinates)."""
    x1, y1, z1, t1 = p1
    x2, y2, z2, t2 = p2
    a = (y1 - x1) * (y2 - x2) % P
    b = (y1 + x1) * (y2 + x2) % P
    c = 2 * t1 * t2 * D % P
    dd = 2 * z1 * z2 % P
    e = b - a
    f = dd - c
    g = dd + c
    h = b + a
    return (e * f % P, g * h % P, f * g % P, e * h % P)


def point_mul(scalar: int, point: _Point) -> _Point:
    """Scalar multiplication by double-and-add."""
    result = IDENTITY
    addend = point
    while scalar > 0:
        if scalar & 1:
            result = point_add(result, addend)
        addend = point_add(addend, addend)
        scalar >>= 1
    return result


def point_equal(p1: _Point, p2: _Point) -> bool:
    """Compare projective points: X1/Z1 == X2/Z2 and Y1/Z1 == Y2/Z2."""
    x1, y1, z1, _ = p1
    x2, y2, z2, _ = p2
    return (x1 * z2 - x2 * z1) % P == 0 and (y1 * z2 - y2 * z1) % P == 0


def point_compress(point: _Point) -> bytes:
    """Encode a point to 32 bytes (y with the sign of x in the top bit)."""
    x, y, z, _ = point
    zinv = pow(z, P - 2, P)
    x = x * zinv % P
    y = y * zinv % P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def point_decompress(data: bytes) -> _Point:
    """Decode 32 bytes to a point; raise :class:`CryptoError` if invalid."""
    if len(data) != 32:
        raise CryptoError("compressed point must be 32 bytes")
    y = int.from_bytes(data, "little")
    sign = y >> 255
    y &= (1 << 255) - 1
    x = _recover_x(y, sign)
    return _point_from_affine(x, y)


def is_on_curve(point: _Point) -> bool:
    """Check -x^2 + y^2 = 1 + d x^2 y^2 (projectively)."""
    x, y, z, t = point
    return (
        (-x * x + y * y - z * z - D * t * t) % P == 0
        and (x * y - z * t) % P == 0
    )


# --- Key generation, signing, verification (RFC 8032, section 5.1.5+) ----


def _secret_expand(secret: bytes) -> tuple[int, bytes]:
    """Expand a 32-byte seed into the clamped scalar and the PRF prefix."""
    if len(secret) != 32:
        raise CryptoError("Ed25519 secret seed must be 32 bytes")
    h = sha512(secret)
    a = int.from_bytes(h[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a, h[32:]


def secret_to_public(secret: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret seed."""
    a, _ = _secret_expand(secret)
    return point_compress(point_mul(a, BASE_POINT))


def secret_scalar(secret: bytes) -> int:
    """The clamped private scalar (needed by the VRF suite)."""
    return _secret_expand(secret)[0]


def sign(secret: bytes, message: bytes) -> bytes:
    """Produce a 64-byte Ed25519 signature over ``message``."""
    a, prefix = _secret_expand(secret)
    public = point_compress(point_mul(a, BASE_POINT))
    r = int.from_bytes(sha512(prefix, message), "little") % Q
    r_point = point_compress(point_mul(r, BASE_POINT))
    h = int.from_bytes(sha512(r_point, public, message), "little") % Q
    s = (r + h * a) % Q
    return r_point + s.to_bytes(32, "little")


def verify(public: bytes, message: bytes, signature: bytes) -> None:
    """Verify a signature; raise :class:`SignatureError` on failure."""
    if len(public) != 32:
        raise SignatureError("public key must be 32 bytes")
    if len(signature) != 64:
        raise SignatureError("signature must be 64 bytes")
    try:
        a_point = point_decompress(public)
        r_point = point_decompress(signature[:32])
    except CryptoError as exc:
        raise SignatureError(f"malformed point: {exc}") from exc
    s = int.from_bytes(signature[32:], "little")
    if s >= Q:
        raise SignatureError("signature scalar out of range")
    h = int.from_bytes(sha512(signature[:32], public, message), "little") % Q
    lhs = point_mul(s, BASE_POINT)
    rhs = point_add(r_point, point_mul(h, a_point))
    if not point_equal(lhs, rhs):
        raise SignatureError("signature mismatch")
