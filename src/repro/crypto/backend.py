"""Pluggable crypto backends.

Two interchangeable implementations of the same interface:

* :class:`Ed25519Backend` — real Ed25519 signatures (RFC 8032) and the
  ECVRF suite (RFC 9381). Bit-for-bit faithful to the paper's crypto, but
  pure Python and therefore slow.
* :class:`FastBackend` — a simulation-grade backend. Signatures and VRF
  outputs are SHA-512-derived from the secret key, so they have exactly the
  distributional properties sortition needs (deterministic, uniform,
  unforgeable-within-the-simulation) while costing a single hash.
  Verification resolves the secret through an in-process registry — the
  moral equivalent of the paper's section 10.1 trick of replacing signature
  verification with an equal-duration sleep.

All higher layers (sortition, BA*, the ledger) speak only to this
interface, so every experiment can run under either backend.
"""

from __future__ import annotations

import hmac
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import CryptoError, SignatureError, VRFError
from repro.crypto import ed25519, vrf
from repro.crypto.hashing import sha512

if TYPE_CHECKING:  # imported lazily to avoid a package cycle
    from repro.runtime.cache import VerificationCache


@dataclass(frozen=True)
class KeyPair:
    """A user's key pair. ``public`` doubles as the user's identity."""

    secret: bytes
    public: bytes


class CryptoBackend(ABC):
    """Signature + VRF operations used by the protocol."""

    name: str

    @abstractmethod
    def keypair(self, seed: bytes) -> KeyPair:
        """Deterministically derive a key pair from a 32-byte seed."""

    @abstractmethod
    def sign(self, secret: bytes, message: bytes) -> bytes:
        """Sign ``message``; returns the signature bytes."""

    @abstractmethod
    def verify(self, public: bytes, message: bytes, signature: bytes) -> None:
        """Raise :class:`SignatureError` unless the signature is valid."""

    @abstractmethod
    def vrf_prove(self, secret: bytes, alpha: bytes) -> tuple[bytes, bytes]:
        """Evaluate the VRF on ``alpha``; returns ``(hash, proof)``.

        ``hash`` is the pseudorandom output (``beta``); ``proof`` lets
        anyone holding the public key verify it.
        """

    @abstractmethod
    def vrf_verify(self, public: bytes, proof: bytes, alpha: bytes) -> bytes:
        """Verify a VRF proof and return its hash output.

        Raises:
            VRFError: if the proof does not verify for ``alpha``.
        """

    def is_valid_signature(self, public: bytes, message: bytes,
                           signature: bytes) -> bool:
        """Boolean convenience wrapper over :meth:`verify`."""
        try:
            self.verify(public, message, signature)
        except SignatureError:
            return False
        return True

    def vrf_output(self, secret: bytes, alpha: bytes) -> bytes:
        """The VRF hash alone, without the proof.

        The stake pool's selection screen only needs the pseudorandom
        output for every candidate; proofs are produced (via
        :meth:`vrf_prove`) only for the few accounts that win. Backends
        whose proof costs extra work override this.
        """
        return self.vrf_prove(secret, alpha)[0]


class Ed25519Backend(CryptoBackend):
    """Real crypto: Ed25519 signatures and ECVRF-EDWARDS25519-SHA512-TAI."""

    name = "ed25519"

    def keypair(self, seed: bytes) -> KeyPair:
        if len(seed) != 32:
            raise CryptoError("key seed must be 32 bytes")
        return KeyPair(secret=seed, public=ed25519.secret_to_public(seed))

    def sign(self, secret: bytes, message: bytes) -> bytes:
        return ed25519.sign(secret, message)

    def verify(self, public: bytes, message: bytes, signature: bytes) -> None:
        ed25519.verify(public, message, signature)

    def vrf_prove(self, secret: bytes, alpha: bytes) -> tuple[bytes, bytes]:
        proof = vrf.prove(secret, alpha)
        return vrf.proof_to_hash(proof), proof

    def vrf_verify(self, public: bytes, proof: bytes, alpha: bytes) -> bytes:
        return vrf.verify(public, proof, alpha)


class FastBackend(CryptoBackend):
    """Hash-based simulation backend with an in-process key registry.

    Security properties hold only against adversaries *inside the
    simulation*, which never inspect the registry; distributional
    properties (uniform VRF outputs, per-key determinism) are exact.
    """

    name = "fast"

    _SIG_LEN = 32
    _PROOF_LEN = 64

    def __init__(self) -> None:
        self._registry: dict[bytes, bytes] = {}

    def keypair(self, seed: bytes) -> KeyPair:
        if len(seed) != 32:
            raise CryptoError("key seed must be 32 bytes")
        public = sha512(b"fast-pk", seed)[:32]
        self._registry[public] = seed
        return KeyPair(secret=seed, public=public)

    def _secret_for(self, public: bytes) -> bytes:
        try:
            return self._registry[public]
        except KeyError:
            raise CryptoError(
                "unknown public key: FastBackend can only verify keys it "
                "generated (use one backend instance per simulation)"
            ) from None

    def sign(self, secret: bytes, message: bytes) -> bytes:
        return sha512(b"fast-sig", secret, message)[:self._SIG_LEN]

    def verify(self, public: bytes, message: bytes, signature: bytes) -> None:
        secret = self._secret_for(public)
        expected = self.sign(secret, message)
        if not hmac.compare_digest(expected, signature):
            raise SignatureError("signature mismatch")

    def vrf_prove(self, secret: bytes, alpha: bytes) -> tuple[bytes, bytes]:
        beta = sha512(b"fast-vrf", secret, alpha)
        proof = sha512(b"fast-vrf-proof", secret, alpha)
        return beta, proof

    def vrf_output(self, secret: bytes, alpha: bytes) -> bytes:
        return sha512(b"fast-vrf", secret, alpha)

    def vrf_verify(self, public: bytes, proof: bytes, alpha: bytes) -> bytes:
        secret = self._secret_for(public)
        beta, expected = self.vrf_prove(secret, alpha)
        if not hmac.compare_digest(expected, proof):
            raise VRFError("VRF proof verification failed")
        return beta


class CachedBackend(CryptoBackend):
    """Backend wrapper memoizing verification through a shared cache.

    Wrap the outermost backend of a simulation (including a
    :class:`repro.crypto.counting.CountingBackend` — a cache hit then
    never reaches the counter, mirroring a deployment where the relay
    genuinely skips the verify). Key generation, signing, and VRF
    evaluation are *not* cached: they are secret-key operations each node
    performs for itself. Only :meth:`verify` and :meth:`vrf_verify` — the
    context-independent checks every relay repeats — go through the
    :class:`repro.runtime.cache.VerificationCache`.
    """

    def __init__(self, inner: CryptoBackend,
                 cache: "VerificationCache") -> None:
        self.inner = inner
        self.cache = cache
        self.name = f"cached({inner.name})"

    def keypair(self, seed: bytes) -> KeyPair:
        return self.inner.keypair(seed)

    def sign(self, secret: bytes, message: bytes) -> bytes:
        return self.inner.sign(secret, message)

    def verify(self, public: bytes, message: bytes, signature: bytes) -> None:
        self.cache.verify(self.inner, public, message, signature)

    def vrf_prove(self, secret: bytes, alpha: bytes) -> tuple[bytes, bytes]:
        return self.inner.vrf_prove(secret, alpha)

    def vrf_output(self, secret: bytes, alpha: bytes) -> bytes:
        return self.inner.vrf_output(secret, alpha)

    def vrf_verify(self, public: bytes, proof: bytes, alpha: bytes) -> bytes:
        return self.cache.vrf_verify(self.inner, public, proof, alpha)


def default_backend() -> CryptoBackend:
    """Backend used when none is specified: fast, simulation-grade."""
    return FastBackend()
