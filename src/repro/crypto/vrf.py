"""Verifiable Random Function: ECVRF-EDWARDS25519-SHA512-TAI.

The paper (section 5) builds cryptographic sortition on a VRF and cites the
Goldberg et al. construction [28], which was later standardized as RFC 9381.
This module implements the ``ECVRF-EDWARDS25519-SHA512-TAI`` ciphersuite on
top of the Ed25519 arithmetic in :mod:`repro.crypto.ed25519`:

* ``prove(sk, alpha)`` returns an 80-byte proof ``pi``.
* ``proof_to_hash(pi)`` returns the 64-byte pseudorandom output ``beta``.
* ``verify(pk, pi, alpha)`` checks the proof and returns ``beta``.

Properties relied on by the protocol (and exercised by the test suite):
*uniqueness* (one valid ``beta`` per key/input), *pseudorandomness* (``beta``
is uniform to anyone without ``sk``), and *verifiability*.
"""

from __future__ import annotations

from repro.common.errors import CryptoError, VRFError
from repro.crypto import ed25519
from repro.crypto.ed25519 import (
    BASE_POINT,
    IDENTITY,
    Q,
    point_add,
    point_compress,
    point_decompress,
    point_equal,
    point_mul,
)
from repro.crypto.hashing import sha512

#: RFC 9381 suite string for ECVRF-EDWARDS25519-SHA512-TAI.
SUITE = b"\x03"
#: Challenge length in octets (cLen).
CHALLENGE_LEN = 16
#: Proof length: 32 (Gamma) + 16 (c) + 32 (s).
PROOF_LEN = 80
#: VRF output length in octets (SHA-512 digest).
BETA_LEN = 64

_COFACTOR = 8


def _point_neg(point: ed25519._Point) -> ed25519._Point:
    x, y, z, t = point
    return ((-x) % ed25519.P, y, z, (-t) % ed25519.P)


def _encode_to_curve(pk_bytes: bytes, alpha: bytes) -> ed25519._Point:
    """Try-and-increment hash-to-curve (RFC 9381, section 5.4.1.1)."""
    for ctr in range(256):
        hash_string = sha512(
            SUITE, b"\x01", pk_bytes, alpha, bytes([ctr]), b"\x00"
        )
        try:
            candidate = point_decompress(hash_string[:32])
        except CryptoError:
            continue
        point = point_mul(_COFACTOR, candidate)
        if not point_equal(point, IDENTITY):
            return point
    raise VRFError("encode_to_curve failed after 256 attempts")


def _challenge(points: list[bytes]) -> int:
    """Challenge generation (RFC 9381, section 5.4.3)."""
    c_string = sha512(SUITE, b"\x02", *points, b"\x00")[:CHALLENGE_LEN]
    return int.from_bytes(c_string, "little")


def _nonce(secret: bytes, h_string: bytes) -> int:
    """Deterministic nonce (RFC 8032-style, RFC 9381 section 5.4.2.2)."""
    prefix = sha512(secret)[32:]
    return int.from_bytes(sha512(prefix, h_string), "little") % Q


def prove(secret: bytes, alpha: bytes) -> bytes:
    """Produce the VRF proof ``pi`` for input ``alpha`` under ``secret``."""
    x = ed25519.secret_scalar(secret)
    pk_bytes = ed25519.secret_to_public(secret)
    h_point = _encode_to_curve(pk_bytes, alpha)
    h_string = point_compress(h_point)
    gamma = point_mul(x, h_point)
    k = _nonce(secret, h_string)
    c = _challenge([
        pk_bytes,
        h_string,
        point_compress(gamma),
        point_compress(point_mul(k, BASE_POINT)),
        point_compress(point_mul(k, h_point)),
    ])
    s = (k + c * x) % Q
    return (
        point_compress(gamma)
        + c.to_bytes(CHALLENGE_LEN, "little")
        + s.to_bytes(32, "little")
    )


def _decode_proof(pi: bytes) -> tuple[ed25519._Point, int, int]:
    if len(pi) != PROOF_LEN:
        raise VRFError(f"proof must be {PROOF_LEN} bytes, got {len(pi)}")
    try:
        gamma = point_decompress(pi[:32])
    except CryptoError as exc:
        raise VRFError(f"invalid Gamma encoding: {exc}") from exc
    c = int.from_bytes(pi[32:32 + CHALLENGE_LEN], "little")
    s = int.from_bytes(pi[32 + CHALLENGE_LEN:], "little")
    if s >= Q:
        raise VRFError("proof scalar s out of range")
    return gamma, c, s


def proof_to_hash(pi: bytes) -> bytes:
    """Map a proof to its 64-byte VRF output ``beta`` (section 5.2)."""
    gamma, _, _ = _decode_proof(pi)
    gamma_cleared = point_mul(_COFACTOR, gamma)
    return sha512(SUITE, b"\x03", point_compress(gamma_cleared), b"\x00")


def verify(public: bytes, pi: bytes, alpha: bytes) -> bytes:
    """Verify ``pi`` for ``alpha`` under ``public``; return ``beta``.

    Raises:
        VRFError: if the proof is malformed or does not verify.
    """
    gamma, c, s = _decode_proof(pi)
    try:
        y_point = point_decompress(public)
    except CryptoError as exc:
        raise VRFError(f"invalid public key: {exc}") from exc
    h_point = _encode_to_curve(public, alpha)
    h_string = point_compress(h_point)
    # U = s*B - c*Y ; V = s*H - c*Gamma
    u_point = point_add(point_mul(s, BASE_POINT),
                        _point_neg(point_mul(c, y_point)))
    v_point = point_add(point_mul(s, h_point),
                        _point_neg(point_mul(c, gamma)))
    c_prime = _challenge([
        public,
        h_string,
        point_compress(gamma),
        point_compress(u_point),
        point_compress(v_point),
    ])
    if c != c_prime:
        raise VRFError("VRF proof verification failed")
    return proof_to_hash(pi)
