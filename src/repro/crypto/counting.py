"""Operation-counting backend wrapper (CPU-cost proxy, section 10.3).

The paper reports that Algorand's CPU cost is dominated by verifying
signatures and VRFs (~6.5% of a core per user at 50k users). Our
simulation cannot measure wall-clock CPU meaningfully, so the costs
experiment counts the operations themselves: wrap any backend in
:class:`CountingBackend` and read :attr:`CryptoOpCounts` afterwards.
Multiplying by per-op costs of a production implementation (e.g. ~50 us
per Ed25519 verify in C) converts counts into CPU estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.backend import CryptoBackend, KeyPair


@dataclass
class CryptoOpCounts:
    """Totals across a simulation."""

    keypairs: int = 0
    signs: int = 0
    verifies: int = 0
    vrf_proves: int = 0
    vrf_verifies: int = 0
    #: Verifications answered by the shared :class:`VerificationCache`
    #: (see :mod:`repro.runtime.cache`) instead of reaching this backend.
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def total_verifications(self) -> int:
        """The ops the paper identifies as the CPU bottleneck."""
        return self.verifies + self.vrf_verifies

    @property
    def verifications_avoided(self) -> int:
        """Crypto ops the verification cache removed from the hot path."""
        return self.cache_hits

    def cpu_seconds(self, sign_cost: float = 25e-6,
                    verify_cost: float = 60e-6,
                    vrf_prove_cost: float = 100e-6,
                    vrf_verify_cost: float = 130e-6) -> float:
        """Estimated CPU time at production (C library) per-op costs."""
        return (self.signs * sign_cost
                + self.verifies * verify_cost
                + self.vrf_proves * vrf_prove_cost
                + self.vrf_verifies * vrf_verify_cost)


@dataclass
class CountingBackend(CryptoBackend):
    """Delegates to ``inner`` while tallying every operation."""

    inner: CryptoBackend
    counts: CryptoOpCounts = field(default_factory=CryptoOpCounts)

    def __post_init__(self) -> None:
        self.name = f"counting({self.inner.name})"

    def keypair(self, seed: bytes) -> KeyPair:
        self.counts.keypairs += 1
        return self.inner.keypair(seed)

    def sign(self, secret: bytes, message: bytes) -> bytes:
        self.counts.signs += 1
        return self.inner.sign(secret, message)

    def verify(self, public: bytes, message: bytes,
               signature: bytes) -> None:
        self.counts.verifies += 1
        self.inner.verify(public, message, signature)

    def vrf_prove(self, secret: bytes, alpha: bytes) -> tuple[bytes, bytes]:
        self.counts.vrf_proves += 1
        return self.inner.vrf_prove(secret, alpha)

    def vrf_verify(self, public: bytes, proof: bytes,
                   alpha: bytes) -> bytes:
        self.counts.vrf_verifies += 1
        return self.inner.vrf_verify(public, proof, alpha)
