"""Merkle tree commitments.

Substrate for the forward-security extension (paper section 11): a user
commits to a series of ephemeral signing keys by publishing one Merkle
root; each key is later revealed together with a logarithmic membership
proof. Domain separation (leaf vs interior prefixes) prevents
second-preimage splices between levels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import H

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _leaf_hash(leaf: bytes) -> bytes:
    return H(_LEAF_PREFIX, leaf)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return H(_NODE_PREFIX, left, right)


def _levels(leaves: list[bytes]) -> list[list[bytes]]:
    if not leaves:
        raise ValueError("cannot build a Merkle tree over zero leaves")
    level = [_leaf_hash(leaf) for leaf in leaves]
    levels = [level]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level), 2):
            if i + 1 < len(level):
                nxt.append(_node_hash(level[i], level[i + 1]))
            else:
                # Odd node is promoted unchanged (Bitcoin-style
                # duplication would allow mutation attacks).
                nxt.append(level[i])
        level = nxt
        levels.append(level)
    return levels


def merkle_root(leaves: list[bytes]) -> bytes:
    """Root commitment over ``leaves`` (order-sensitive)."""
    return _levels(leaves)[-1][0]


@dataclass(frozen=True)
class MerkleProof:
    """Membership proof: sibling hashes from leaf to root."""

    index: int
    siblings: tuple[tuple[bytes, bool], ...]  # (hash, sibling_is_left)

    @property
    def size(self) -> int:
        return 8 + sum(len(h) + 1 for h, _ in self.siblings)


def merkle_proof(leaves: list[bytes], index: int) -> MerkleProof:
    """Prove that ``leaves[index]`` is under ``merkle_root(leaves)``."""
    if not 0 <= index < len(leaves):
        raise IndexError(f"leaf index {index} out of range")
    siblings: list[tuple[bytes, bool]] = []
    position = index
    for level in _levels(leaves)[:-1]:
        if position % 2 == 0:
            if position + 1 < len(level):
                siblings.append((level[position + 1], False))
        else:
            siblings.append((level[position - 1], True))
        position //= 2
    return MerkleProof(index=index, siblings=tuple(siblings))


def verify_merkle(root: bytes, leaf: bytes, proof: MerkleProof) -> bool:
    """Check a membership proof against a root."""
    current = _leaf_hash(leaf)
    for sibling, sibling_is_left in proof.siblings:
        if sibling_is_left:
            current = _node_hash(sibling, current)
        else:
            current = _node_hash(current, sibling)
    return current == root
