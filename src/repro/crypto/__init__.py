"""Cryptographic substrate: hashing, Ed25519, VRF, pluggable backends."""

from repro.crypto.backend import (
    CachedBackend,
    CryptoBackend,
    Ed25519Backend,
    FastBackend,
    KeyPair,
    default_backend,
)
from repro.crypto.counting import CountingBackend, CryptoOpCounts
from repro.crypto.ephemeral import (
    EphemeralKey,
    EphemeralKeyChain,
    verify_ephemeral_key,
)
from repro.crypto.merkle import merkle_proof, merkle_root, verify_merkle
from repro.crypto.hashing import H, HASHLEN_BITS, hash_fraction, hash_to_int

__all__ = [
    "H",
    "HASHLEN_BITS",
    "hash_fraction",
    "hash_to_int",
    "CachedBackend",
    "CryptoBackend",
    "Ed25519Backend",
    "FastBackend",
    "KeyPair",
    "default_backend",
    "CountingBackend",
    "CryptoOpCounts",
    "EphemeralKey",
    "EphemeralKeyChain",
    "verify_ephemeral_key",
    "merkle_root",
    "merkle_proof",
    "verify_merkle",
]
