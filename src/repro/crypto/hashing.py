"""Hash functions used throughout the protocol.

The paper uses SHA-256 as its cryptographic hash ``H`` (section 9) and
models it as a random oracle for seed derivation (section 5.2). All
protocol-level hashing goes through :func:`H` so the choice is made in
exactly one place.
"""

from __future__ import annotations

import hashlib

#: Bit length of protocol hashes (``hashlen`` in Algorithms 1, 2 and 9).
HASHLEN_BITS = 256

#: ``2 ** HASHLEN_BITS``; hashes are compared against fractions of this.
HASH_DOMAIN = 1 << HASHLEN_BITS


def H(*parts: bytes) -> bytes:
    """SHA-256 over the concatenation of ``parts``.

    Callers are responsible for unambiguous input framing (the library
    always passes canonically encoded messages, so concatenation is safe).
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
    return digest.digest()


def hash_to_int(data: bytes) -> int:
    """Interpret a hash as a big-endian integer in ``[0, HASH_DOMAIN)``."""
    return int.from_bytes(H(data), "big")


def hash_fraction(data: bytes) -> float:
    """Map a hash to ``[0, 1)`` as ``hash / 2**hashlen`` (Algorithm 1).

    Only the top 53 bits are used so the conversion is exact in a double
    and the result is strictly below 1.0 (naive division can round
    ``(2**256 - 1) / 2**256`` up to exactly 1.0).
    """
    if not data:
        raise ValueError("empty hash")
    padded = data[:8].ljust(8, b"\x00")
    top = int.from_bytes(padded, "big") >> 11  # 53 bits
    return top / float(1 << 53)


def sha512(*parts: bytes) -> bytes:
    """SHA-512, used internally by Ed25519 and the VRF suite."""
    digest = hashlib.sha512()
    for part in parts:
        digest.update(part)
    return digest.digest()
