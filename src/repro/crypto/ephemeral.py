"""Forward-secure ephemeral signing keys (paper section 11).

The attack: committee members reveal themselves when they vote; an
adversary corrupting enough *past* members could re-sign old steps and
forge a certificate for a fork. The paper's sketched fix: "users forget
the signing key before sending out a signed message (and commit to a
series of signing keys ahead of time)".

This module realizes that sketch:

* a :class:`EphemeralKeyChain` derives one signing key per
  ``(round, step)`` slot from a master secret, commits to the whole
  window with a single Merkle root, and **erases** each slot's secret
  the moment it is used;
* verifiers check a vote's ephemeral public key against the published
  root with a logarithmic Merkle proof — no interaction, no extra trust.

Compromise after use yields nothing: the per-slot secret is gone and the
master secret never signs protocol messages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.encoding import encode
from repro.common.errors import CryptoError
from repro.crypto.backend import CryptoBackend, KeyPair
from repro.crypto.hashing import sha512
from repro.crypto.merkle import MerkleProof, merkle_proof, merkle_root, verify_merkle


@dataclass(frozen=True)
class EphemeralKey:
    """One disclosed slot: key pair + proof of commitment membership."""

    keypair: KeyPair
    round_number: int
    step: str
    proof: MerkleProof


class EphemeralKeyChain:
    """Per-(round, step) one-shot signing keys under one commitment.

    Args:
        backend: crypto backend keys are generated for.
        master_secret: 32-byte seed; never used to sign anything.
        first_round: first round covered by this window.
        num_rounds: rounds in the window.
        steps: step labels covered per round (must include every step a
            committee member might vote in, e.g. reduction steps,
            ``1..MaxSteps`` and ``final``).
    """

    def __init__(self, backend: CryptoBackend, master_secret: bytes,
                 first_round: int, num_rounds: int,
                 steps: list[str]) -> None:
        if len(master_secret) != 32:
            raise CryptoError("master secret must be 32 bytes")
        if num_rounds < 1 or not steps:
            raise ValueError("window must cover >= 1 round and >= 1 step")
        self._backend = backend
        self.first_round = first_round
        self.num_rounds = num_rounds
        self.steps = list(steps)
        self._secrets: dict[tuple[int, str], bytes] = {}
        leaves: list[bytes] = []
        for round_number in range(first_round, first_round + num_rounds):
            for step in self.steps:
                seed = sha512(b"ephemeral", master_secret,
                              encode([round_number, step]))[:32]
                self._secrets[(round_number, step)] = seed
                leaves.append(self._leaf(round_number, step,
                                         backend.keypair(seed).public))
        self._leaves = leaves
        self.root = merkle_root(leaves)

    @staticmethod
    def _leaf(round_number: int, step: str, public: bytes) -> bytes:
        # The leaf binds the key to its slot, so a revealed key cannot be
        # replayed for a different round/step.
        return encode([round_number, step, public])

    def _slot_index(self, round_number: int, step: str) -> int:
        round_offset = round_number - self.first_round
        if not 0 <= round_offset < self.num_rounds:
            raise KeyError(f"round {round_number} outside this window")
        try:
            step_offset = self.steps.index(step)
        except ValueError:
            raise KeyError(f"step {step!r} not covered") from None
        return round_offset * len(self.steps) + step_offset

    def use_key(self, round_number: int, step: str) -> EphemeralKey:
        """Disclose the slot's key pair and *erase* its secret.

        Raises:
            KeyError: if the slot is outside the window or already used
                (forward security: a used key cannot be re-derived).
        """
        secret = self._secrets.pop((round_number, step), None)
        if secret is None:
            raise KeyError(
                f"ephemeral key for ({round_number}, {step}) already "
                f"used or out of window")
        index = self._slot_index(round_number, step)
        return EphemeralKey(
            keypair=self._backend.keypair(secret),
            round_number=round_number,
            step=step,
            proof=merkle_proof(self._leaves, index),
        )

    def remaining_slots(self) -> int:
        return len(self._secrets)


def verify_ephemeral_key(root: bytes, public: bytes, round_number: int,
                         step: str, proof: MerkleProof) -> bool:
    """Check that ``public`` is the committed key for ``(round, step)``.

    Any user holding the signer's published commitment ``root`` can run
    this before accepting a vote signed by an ephemeral key.
    """
    leaf = EphemeralKeyChain._leaf(round_number, step, public)
    return verify_merkle(root, leaf, proof)
