"""Deterministic discrete-event simulation kernel.

All Algorand nodes in this reproduction run as generator-based processes
over a virtual clock. The kernel is intentionally small (a la SimPy):

* :class:`Environment` owns the clock and the event heap.
* A *process* is a generator that yields *waitables*:
  :class:`Timeout`, :class:`Event`, another :class:`Process` (join), or
  :class:`AnyOf` (first-of-many). The yield expression evaluates to the
  waitable's value; ``AnyOf`` yields ``(index, value)``.

Determinism: events at equal times fire in scheduling order (a
monotonically increasing sequence number breaks ties), so a given seed
always reproduces the same run.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable

from repro.common.errors import SimulationError


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    Heap entries are ``(time, seq, timer)`` tuples so ordering is decided
    by C-level tuple comparison (``seq`` is unique, so the Timer itself
    is never compared) — this is the event loop's hottest path.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Waitable:
    """Base class for things a process can yield."""

    def _arm(self, env: "Environment",
             callback: Callable[[Any], None]) -> Callable[[], None]:
        """Register ``callback`` to fire once; return a disarm function."""
        raise NotImplementedError


class Timeout(Waitable):
    """Fires after ``delay`` simulated seconds with value ``value``."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay
        self.value = value

    def _arm(self, env: "Environment",
             callback: Callable[[Any], None]) -> Callable[[], None]:
        if self.delay == 0.0:
            timer = env.schedule_now(lambda: callback(self.value))
        else:
            timer = env.schedule(self.delay, lambda: callback(self.value))
        return timer.cancel


class Event(Waitable):
    """One-shot event carrying a value; may have many waiters."""

    __slots__ = ("_env", "_waiters", "triggered", "value")

    def __init__(self, env: "Environment") -> None:
        self._env = env
        self._waiters: list[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            # Deliver on the event loop to keep callback ordering sane.
            self._env.schedule_now(lambda w=waiter: w(value))

    def _arm(self, env: "Environment",
             callback: Callable[[Any], None]) -> Callable[[], None]:
        if self.triggered:
            timer = env.schedule_now(lambda: callback(self.value))
            return timer.cancel
        self._waiters.append(callback)

        def disarm() -> None:
            try:
                self._waiters.remove(callback)
            except ValueError:
                pass

        return disarm


class Signal:
    """Reusable broadcast: each :meth:`next_event` fires on next pulse."""

    __slots__ = ("_env", "_pending")

    def __init__(self, env: "Environment") -> None:
        self._env = env
        self._pending: Event | None = None

    def next_event(self) -> Event:
        """An event that fires at the next :meth:`pulse`."""
        if self._pending is None or self._pending.triggered:
            self._pending = Event(self._env)
        return self._pending

    def pulse(self, value: Any = None) -> None:
        if self._pending is not None and not self._pending.triggered:
            self._pending.trigger(value)


class AnyOf(Waitable):
    """Fires when the first of ``children`` fires; value ``(index, value)``."""

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Waitable]) -> None:
        self.children = list(children)
        if not self.children:
            raise SimulationError("AnyOf requires at least one waitable")

    def _arm(self, env: "Environment",
             callback: Callable[[Any], None]) -> Callable[[], None]:
        disarms: list[Callable[[], None]] = []
        done = False

        def fire(index: int, value: Any) -> None:
            nonlocal done
            if done:
                return
            done = True
            for i, disarm in enumerate(disarms):
                if i != index:
                    disarm()
            callback((index, value))

        for i, child in enumerate(self.children):
            disarms.append(
                child._arm(env, lambda v, i=i: fire(i, v))
            )

        def disarm_all() -> None:
            nonlocal done
            done = True
            for disarm in disarms:
                disarm()

        return disarm_all


ProcessGenerator = Generator[Waitable, Any, Any]


class Process(Waitable):
    """Drives a generator; itself waitable (join yields the return value)."""

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str = "") -> None:
        self._env = env
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = False
        self.result: Any = None
        self.error: BaseException | None = None
        self._done_event = Event(env)
        self._finish_callbacks: list[Callable[["Process"], None]] = []
        self._current_disarm: Callable[[], None] | None = None
        env.schedule_now(lambda: self._resume(None))

    def _resume(self, value: Any) -> None:
        if self.done:
            return
        self._current_disarm = None
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as exc:  # propagate at env.run()
            self._finish(None, exc)
            return
        if target is None:
            target = Timeout(0.0)
        if not isinstance(target, Waitable):
            self._finish(None, SimulationError(
                f"process {self.name} yielded non-waitable "
                f"{type(target).__name__}"
            ))
            return
        self._current_disarm = target._arm(self._env, self._resume)

    def _finish(self, result: Any, error: BaseException | None) -> None:
        self.done = True
        self.result = result
        self.error = error
        if error is not None:
            self._env._record_failure(self, error)
        for callback in self._finish_callbacks:
            callback(self)
        self._done_event.trigger(result)

    def add_done_callback(self,
                          callback: Callable[["Process"], None]) -> None:
        """Call ``callback(process)`` synchronously when the process ends.

        Unlike joining the process (which resumes the waiter via the event
        loop), the callback runs inside the very event that finished the
        process — completion trackers see it before the next event fires.
        """
        if self.done:
            callback(self)
        else:
            self._finish_callbacks.append(callback)

    @property
    def running(self) -> bool:
        """True while the generator frame is actually executing.

        A process can observe this about *itself* through a callback
        chain (e.g. a commit hook retiring the committing agent); such
        a process cannot be interrupted — ``generator.close()`` on an
        executing frame raises — and does not need to be, since control
        returns to its own frame when the callback unwinds.
        """
        return self._generator.gi_running

    def interrupt(self) -> None:
        """Stop the process at its current wait point."""
        if self.done:
            return
        if self._current_disarm is not None:
            self._current_disarm()
        self._generator.close()
        self._finish(None, None)

    def _arm(self, env: "Environment",
             callback: Callable[[Any], None]) -> Callable[[], None]:
        return self._done_event._arm(env, callback)


class BatchSchedule:
    """One heap entry delivering a whole batch of timed payloads.

    Where ``schedule`` creates one ``Timer`` (plus one heap entry and one
    callback closure) per event, a batch walks a pre-sorted list of
    ``(time, payload)`` pairs with a single live heap entry that re-arms
    itself for the next distinct time. Payloads sharing an arrival time are
    delivered by one event, in insertion order. The gossip network uses
    this to schedule one event per destination batch instead of one per
    neighbor.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_env", "_items",
                 "_deliver", "_cursor", "_prelude")

    def __init__(self, env: "Environment",
                 items: list[tuple[float, Any]],
                 deliver: Callable[[Any], None],
                 prelude: Callable[[list[Any]], None] | None = None) -> None:
        self._env = env
        # Stable sort: payloads with equal times keep caller order.
        self._items = sorted(items, key=lambda item: item[0])
        self._deliver = deliver
        self._cursor = 0
        #: Optional per-group hook: called once with every payload of a
        #: same-instant delivery group, *before* the group's deliveries.
        #: Must be side-effect-free with respect to simulation semantics
        #: (the gossip layer uses it to prime the verification cache).
        self._prelude = prelude
        self.cancelled = False
        self.callback = self._fire
        self.time = self._items[0][0]

    def _fire(self) -> None:
        items = self._items
        deliver = self._deliver
        cursor = self._cursor
        time = self.time
        n = len(items)
        prelude = self._prelude
        if prelude is not None:
            end = cursor
            while end < n and items[end][0] == time:
                end += 1
            prelude([items[k][1] for k in range(cursor, end)])
        while cursor < n and items[cursor][0] == time:
            payload = items[cursor][1]
            cursor += 1
            deliver(payload)
        env = self._env
        env.batch_walks += 1
        env.batch_deliveries += cursor - self._cursor
        self._cursor = cursor
        if cursor < n and not self.cancelled:
            self.time = items[cursor][0]
            self._env._push(self)

    def cancel(self) -> None:
        """Drop all not-yet-delivered payloads."""
        self.cancelled = True


class Environment:
    """The event loop: virtual clock plus a timer heap.

    Two fast paths keep the hot loop cheap: delay-0 callbacks go onto a
    FIFO *immediate* queue (no heap traffic), and :meth:`schedule_batch`
    shares one heap entry across a whole batch of timed deliveries.
    Ordering is unchanged in both cases — every entry still carries a
    ``(time, seq)`` pair and fires in exactly the order a heap-only loop
    would have produced.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Timer]] = []
        self._immediate: deque[Timer] = deque()
        self._seq = 0
        self._failures: list[tuple[Process, BaseException]] = []
        #: Total events fired across all :meth:`run` calls (perf metric).
        self.events_processed = 0
        #: Fast-path tallies (observability): how many events took the
        #: delay-0 immediate queue, and how much work BatchSchedule
        #: entries absorbed. Plain ints so the hot loop stays cheap; the
        #: obs layer harvests them into its registry at snapshot time.
        self.immediates_processed = 0
        self.batch_walks = 0
        self.batch_deliveries = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past ({delay})")
        timer = Timer(self.now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, (timer.time, timer.seq, timer))
        return timer

    def schedule_now(self, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at the current time without heap traffic.

        Equivalent to ``schedule(0.0, callback)`` — including ordering
        relative to every other timer — but O(1): immediates carry the
        same monotone ``(time, seq)`` keys as heap timers, so the run loop
        can merge the two streams exactly.
        """
        timer = Timer(self.now, self._seq, callback)
        self._seq += 1
        self._immediate.append(timer)
        return timer

    def schedule_batch(self, items: list[tuple[float, Any]],
                       deliver: Callable[[Any], None],
                       prelude: Callable[[list[Any]], None] | None = None,
                       ) -> BatchSchedule:
        """Schedule ``deliver(payload)`` for each ``(delay, payload)``.

        One :class:`BatchSchedule` walks the whole batch with a single
        live heap entry; same-time payloads are delivered by one event.
        Delays are relative to :attr:`now` and must be non-negative.
        ``prelude``, when given, runs once per same-instant delivery
        group with the group's payloads, before its deliveries.
        """
        if not items:
            raise SimulationError("schedule_batch requires at least one item")
        now = self.now
        absolute = []
        for delay, payload in items:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule in the past ({delay})")
            absolute.append((now + delay, payload))
        batch = BatchSchedule(self, absolute, deliver, prelude)
        self._push(batch)
        return batch

    def _push(self, timer: "Timer | BatchSchedule") -> None:
        """(Re-)insert an entry carrying its own ``time`` into the heap."""
        timer.seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (timer.time, timer.seq, timer))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(delay, value)

    def event(self) -> Event:
        return Event(self)

    def signal(self) -> Signal:
        return Signal(self)

    def any_of(self, children: Iterable[Waitable]) -> AnyOf:
        return AnyOf(children)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name)

    def _record_failure(self, process: Process,
                        error: BaseException) -> None:
        self._failures.append((process, error))

    def _raise_if_failed(self) -> None:
        """Surface the first recorded process failure, if any."""
        if self._failures:
            process, error = self._failures[0]
            raise SimulationError(
                f"process {process.name!r} failed at t={self.now:.3f}"
            ) from error

    def run(self, until: float | None = None,
            max_events: int | None = None,
            stop_when: Callable[[], bool] | None = None) -> None:
        """Run until the queues drain, ``until`` is reached, or cap hit.

        ``stop_when`` is evaluated after each event; returning True ends
        the run early (used to stop once every node process finished,
        without waiting out background egress loops).

        Raises the first process failure encountered on *every* exit path
        — including early returns via ``until`` and ``stop_when`` —
        so simulations never silently swallow node crashes.
        """
        events = 0
        heap = self._heap
        immediate = self._immediate
        heappop = heapq.heappop
        while True:
            # Drop cancelled heads so the head comparison sees live timers.
            while heap and heap[0][2].cancelled:
                heappop(heap)
            while immediate and immediate[0].cancelled:
                immediate.popleft()
            if not heap and not immediate:
                break
            self._raise_if_failed()
            # Merge the two streams in exact (time, seq) order. Immediates
            # are FIFO with monotone keys, so their head is their minimum.
            if immediate and (not heap
                              or (immediate[0].time, immediate[0].seq)
                              < heap[0][:2]):
                timer = immediate[0]
                if until is not None and timer.time > until:
                    self.now = until
                    self._raise_if_failed()
                    return
                immediate.popleft()
                self.immediates_processed += 1
            else:
                timer = heap[0][2]
                if until is not None and timer.time > until:
                    self.now = until
                    self._raise_if_failed()
                    return
                heappop(heap)
            self.now = timer.time
            timer.callback()
            events += 1
            self.events_processed += 1
            if stop_when is not None and stop_when():
                self._raise_if_failed()
                return
            if max_events is not None and events >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} (possible livelock)"
                )
        self._raise_if_failed()
        if until is not None:
            self.now = until
