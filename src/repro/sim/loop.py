"""Deterministic discrete-event simulation kernel.

All Algorand nodes in this reproduction run as generator-based processes
over a virtual clock. The kernel is intentionally small (a la SimPy):

* :class:`Environment` owns the clock and the event heap.
* A *process* is a generator that yields *waitables*:
  :class:`Timeout`, :class:`Event`, another :class:`Process` (join), or
  :class:`AnyOf` (first-of-many). The yield expression evaluates to the
  waitable's value; ``AnyOf`` yields ``(index, value)``.

Determinism: events at equal times fire in scheduling order (a
monotonically increasing sequence number breaks ties), so a given seed
always reproduces the same run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.common.errors import SimulationError


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    Heap entries are ``(time, seq, timer)`` tuples so ordering is decided
    by C-level tuple comparison (``seq`` is unique, so the Timer itself
    is never compared) — this is the event loop's hottest path.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Waitable:
    """Base class for things a process can yield."""

    def _arm(self, env: "Environment",
             callback: Callable[[Any], None]) -> Callable[[], None]:
        """Register ``callback`` to fire once; return a disarm function."""
        raise NotImplementedError


class Timeout(Waitable):
    """Fires after ``delay`` simulated seconds with value ``value``."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay
        self.value = value

    def _arm(self, env: "Environment",
             callback: Callable[[Any], None]) -> Callable[[], None]:
        timer = env.schedule(self.delay, lambda: callback(self.value))
        return timer.cancel


class Event(Waitable):
    """One-shot event carrying a value; may have many waiters."""

    __slots__ = ("_env", "_waiters", "triggered", "value")

    def __init__(self, env: "Environment") -> None:
        self._env = env
        self._waiters: list[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None

    def trigger(self, value: Any = None) -> None:
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            # Deliver on the event loop to keep callback ordering sane.
            self._env.schedule(0.0, lambda w=waiter: w(value))

    def _arm(self, env: "Environment",
             callback: Callable[[Any], None]) -> Callable[[], None]:
        if self.triggered:
            timer = env.schedule(0.0, lambda: callback(self.value))
            return timer.cancel
        self._waiters.append(callback)

        def disarm() -> None:
            try:
                self._waiters.remove(callback)
            except ValueError:
                pass

        return disarm


class Signal:
    """Reusable broadcast: each :meth:`next_event` fires on next pulse."""

    __slots__ = ("_env", "_pending")

    def __init__(self, env: "Environment") -> None:
        self._env = env
        self._pending: Event | None = None

    def next_event(self) -> Event:
        """An event that fires at the next :meth:`pulse`."""
        if self._pending is None or self._pending.triggered:
            self._pending = Event(self._env)
        return self._pending

    def pulse(self, value: Any = None) -> None:
        if self._pending is not None and not self._pending.triggered:
            self._pending.trigger(value)


class AnyOf(Waitable):
    """Fires when the first of ``children`` fires; value ``(index, value)``."""

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Waitable]) -> None:
        self.children = list(children)
        if not self.children:
            raise SimulationError("AnyOf requires at least one waitable")

    def _arm(self, env: "Environment",
             callback: Callable[[Any], None]) -> Callable[[], None]:
        disarms: list[Callable[[], None]] = []
        done = False

        def fire(index: int, value: Any) -> None:
            nonlocal done
            if done:
                return
            done = True
            for i, disarm in enumerate(disarms):
                if i != index:
                    disarm()
            callback((index, value))

        for i, child in enumerate(self.children):
            disarms.append(
                child._arm(env, lambda v, i=i: fire(i, v))
            )

        def disarm_all() -> None:
            nonlocal done
            done = True
            for disarm in disarms:
                disarm()

        return disarm_all


ProcessGenerator = Generator[Waitable, Any, Any]


class Process(Waitable):
    """Drives a generator; itself waitable (join yields the return value)."""

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str = "") -> None:
        self._env = env
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = False
        self.result: Any = None
        self.error: BaseException | None = None
        self._done_event = Event(env)
        self._current_disarm: Callable[[], None] | None = None
        env.schedule(0.0, lambda: self._resume(None))

    def _resume(self, value: Any) -> None:
        if self.done:
            return
        self._current_disarm = None
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as exc:  # propagate at env.run()
            self._finish(None, exc)
            return
        if target is None:
            target = Timeout(0.0)
        if not isinstance(target, Waitable):
            self._finish(None, SimulationError(
                f"process {self.name} yielded non-waitable "
                f"{type(target).__name__}"
            ))
            return
        self._current_disarm = target._arm(self._env, self._resume)

    def _finish(self, result: Any, error: BaseException | None) -> None:
        self.done = True
        self.result = result
        self.error = error
        if error is not None:
            self._env._record_failure(self, error)
        self._done_event.trigger(result)

    def interrupt(self) -> None:
        """Stop the process at its current wait point."""
        if self.done:
            return
        if self._current_disarm is not None:
            self._current_disarm()
        self._generator.close()
        self._finish(None, None)

    def _arm(self, env: "Environment",
             callback: Callable[[Any], None]) -> Callable[[], None]:
        return self._done_event._arm(env, callback)


class Environment:
    """The event loop: virtual clock plus a timer heap."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Timer]] = []
        self._seq = 0
        self._failures: list[tuple[Process, BaseException]] = []

    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past ({delay})")
        timer = Timer(self.now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, (timer.time, timer.seq, timer))
        return timer

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(delay, value)

    def event(self) -> Event:
        return Event(self)

    def signal(self) -> Signal:
        return Signal(self)

    def any_of(self, children: Iterable[Waitable]) -> AnyOf:
        return AnyOf(children)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name)

    def _record_failure(self, process: Process,
                        error: BaseException) -> None:
        self._failures.append((process, error))

    def run(self, until: float | None = None,
            max_events: int | None = None,
            stop_when: Callable[[], bool] | None = None) -> None:
        """Run until the heap drains, ``until`` is reached, or cap hit.

        ``stop_when`` is evaluated after each event; returning True ends
        the run early (used to stop once every node process finished,
        without waiting out background egress loops).

        Raises the first process failure encountered (simulations must not
        silently swallow node crashes).
        """
        events = 0
        while self._heap:
            if self._failures:
                process, error = self._failures[0]
                raise SimulationError(
                    f"process {process.name!r} failed at t={self.now:.3f}"
                ) from error
            timer = self._heap[0][2]
            if timer.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and timer.time > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = timer.time
            timer.callback()
            events += 1
            if stop_when is not None and stop_when():
                return
            if max_events is not None and events >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} (possible livelock)"
                )
        if self._failures:
            process, error = self._failures[0]
            raise SimulationError(
                f"process {process.name!r} failed at t={self.now:.3f}"
            ) from error
        if until is not None:
            self.now = until
