"""Discrete-event simulation kernel (virtual clock, processes, events)."""

from repro.sim.loop import (
    AnyOf,
    BatchSchedule,
    Environment,
    Event,
    Process,
    Signal,
    Timeout,
    Waitable,
)

__all__ = [
    "Environment",
    "Event",
    "Signal",
    "Timeout",
    "AnyOf",
    "BatchSchedule",
    "Process",
    "Waitable",
]
