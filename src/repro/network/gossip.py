"""Simulated gossip network (section 4 "Gossip protocol", section 8.4).

Topology: every node selects ``peers_per_node`` random outgoing peers;
links are bidirectional, so nodes end up with ~``2 * peers_per_node``
neighbors (the paper: 4 selected, 8 on average). Messages propagate by
store-and-forward flooding with duplicate suppression; nodes validate
messages before relaying them (the relay decision is a callback supplied
by the protocol layer, which implements the one-message-per-key-per-step
rule of section 8.4).

Costs: each node has an egress bandwidth cap; sending an ``s``-byte
message to one neighbor occupies the sender's uplink for ``8 s / bw``
seconds, then the message arrives after the pairwise one-way latency from
the latency model. This reproduces both terms the paper's evaluation is
sensitive to: per-hop latency and size-proportional block propagation.

Adversarial control: a ``drop_filter`` hook inspects every (src, dst,
envelope) and may drop it — partitions, targeted DoS, and message delays
are built from this single mechanism (see :mod:`repro.adversary`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Protocol

import numpy as np

from repro.common.errors import NetworkError
from repro.network.message import Envelope
from repro.sim.loop import Environment, Signal


class SupportsLatency(Protocol):
    def latency(self, src: int, dst: int) -> float: ...
    def city_of(self, user_index: int) -> str: ...


DropFilter = Callable[[int, int, Envelope], bool]
RelayPolicy = Callable[[Envelope], bool]

#: Messages at or below this size use the urgent egress lane (votes,
#: priority announcements, transactions) and never wait behind blocks.
URGENT_MESSAGE_BYTES = 1500


class NetworkInterface:
    """One node's attachment point to the gossip network."""

    def __init__(self, network: "GossipNetwork", index: int) -> None:
        self._network = network
        self.index = index
        self.neighbors: list[int] = []
        self._seen: set[int] = set()
        self.inbox: deque[Envelope] = deque()
        self.receive_signal: Signal = network.env.signal()
        #: Protocol-layer validation: called before relaying a received
        #: message; return False to accept locally but not forward.
        self.relay_policy: RelayPolicy = lambda envelope: True
        self.disconnected = False
        self.bytes_sent = 0
        self.messages_sent = 0
        # Two egress lanes: small control messages (votes, priorities)
        # must not queue behind bulk block transfers — they ride separate
        # TCP connections in the paper's prototype.
        self._egress_urgent: deque[tuple[Envelope, int]] = deque()
        self._egress_bulk: deque[tuple[Envelope, int]] = deque()
        self._egress_signal = network.env.signal()
        network.env.process(self._egress_loop(), f"egress-{index}")

    # --- Sending ----------------------------------------------------------

    def broadcast(self, envelope: Envelope) -> None:
        """Originate a message: mark as seen and send to all neighbors."""
        self._seen.add(envelope.msg_id)
        self._send_to_neighbors(envelope, exclude=None)

    def send_to(self, envelope: Envelope, targets: list[int]) -> None:
        """Originate a message to a *subset* of neighbors.

        Honest nodes never need this; adversarial strategies use it to
        show different messages to different peers (e.g. the equivocating
        proposer of section 10.4).
        """
        self._seen.add(envelope.msg_id)
        if self.disconnected:
            return
        lane = self._lane_for(envelope)
        for target in targets:
            if target not in self.neighbors:
                raise NetworkError(f"{target} is not a neighbor of "
                                   f"{self.index}")
            lane.append((envelope, target))
        self._egress_signal.pulse()

    def _lane_for(self, envelope: Envelope) -> deque[tuple[Envelope, int]]:
        if envelope.size <= URGENT_MESSAGE_BYTES:
            return self._egress_urgent
        return self._egress_bulk

    def _send_to_neighbors(self, envelope: Envelope,
                           exclude: int | None) -> None:
        if self.disconnected:
            return
        lane = self._lane_for(envelope)
        for neighbor in self.neighbors:
            if neighbor != exclude:
                lane.append((envelope, neighbor))
        self._egress_signal.pulse()

    def _egress_loop(self):
        env = self._network.env
        bandwidth = self._network.bandwidth_bps
        while True:
            while self._egress_urgent or self._egress_bulk:
                if self._egress_urgent:
                    envelope, dst = self._egress_urgent.popleft()
                else:
                    envelope, dst = self._egress_bulk.popleft()
                if bandwidth is not None:
                    yield env.timeout(envelope.size * 8.0 / bandwidth)
                self.bytes_sent += envelope.size
                self.messages_sent += 1
                self._network._transmit(self.index, dst, envelope)
            yield self._egress_signal.next_event()

    # --- Receiving --------------------------------------------------------

    def _deliver(self, envelope: Envelope, from_index: int) -> None:
        if self.disconnected or envelope.msg_id in self._seen:
            return
        self._seen.add(envelope.msg_id)
        self.inbox.append(envelope)
        self.receive_signal.pulse()
        if self.relay_policy(envelope):
            self._send_to_neighbors(envelope, exclude=from_index)


class GossipNetwork:
    """The full peer-to-peer fabric."""

    def __init__(self, env: Environment, num_nodes: int,
                 rng: np.random.Generator, latency_model: SupportsLatency,
                 peers_per_node: int = 4,
                 bandwidth_bps: float | None = 20e6) -> None:
        if num_nodes < 2:
            raise NetworkError("gossip network needs at least 2 nodes")
        if peers_per_node < 1:
            raise NetworkError("peers_per_node must be >= 1")
        self.env = env
        self.rng = rng
        self.latency_model = latency_model
        self.peers_per_node = peers_per_node
        self.bandwidth_bps = bandwidth_bps
        self.drop_filter: DropFilter | None = None
        self.messages_delivered = 0
        self.interfaces = [NetworkInterface(self, i)
                           for i in range(num_nodes)]
        self.reshuffle_peers()

    @property
    def num_nodes(self) -> int:
        return len(self.interfaces)

    def reshuffle_peers(self) -> None:
        """(Re)build the random peer graph (paper: new peers each round)."""
        n = self.num_nodes
        adjacency: list[set[int]] = [set() for _ in range(n)]
        k = min(self.peers_per_node, n - 1)
        for node in range(n):
            peers = self.rng.choice(n - 1, size=k, replace=False)
            for peer in peers:
                # Map [0, n-2] onto all indices except `node`.
                target = int(peer) + (1 if peer >= node else 0)
                adjacency[node].add(target)
                adjacency[target].add(node)
        for node in range(n):
            self.interfaces[node].neighbors = sorted(adjacency[node])

    def _transmit(self, src: int, dst: int, envelope: Envelope) -> None:
        if self.drop_filter is not None and self.drop_filter(src, dst,
                                                             envelope):
            return
        delay = self.latency_model.latency(src, dst)
        self.env.schedule(
            delay,
            lambda: self._arrive(src, dst, envelope),
        )

    def _arrive(self, src: int, dst: int, envelope: Envelope) -> None:
        self.messages_delivered += 1
        self.interfaces[dst]._deliver(envelope, src)

    # --- Cost accounting ----------------------------------------------

    @property
    def total_bytes_sent(self) -> int:
        return sum(iface.bytes_sent for iface in self.interfaces)

    def bytes_sent_per_node(self) -> list[int]:
        return [iface.bytes_sent for iface in self.interfaces]
