"""Simulated gossip network (section 4 "Gossip protocol", section 8.4).

Topology: every node selects ``peers_per_node`` random outgoing peers;
links are bidirectional, so nodes end up with ~``2 * peers_per_node``
neighbors (the paper: 4 selected, 8 on average). Messages propagate by
store-and-forward flooding with duplicate suppression; nodes validate
messages before relaying them (the relay decision is a callback supplied
by the protocol layer, which implements the one-message-per-key-per-step
rule of section 8.4).

Costs: each node has an egress bandwidth cap; sending an ``s``-byte
message to one neighbor occupies the sender's uplink for ``8 s / bw``
seconds, then the message arrives after the pairwise one-way latency from
the latency model. This reproduces both terms the paper's evaluation is
sensitive to: per-hop latency and size-proportional block propagation.

Adversarial control: a ``drop_filter`` hook inspects every (src, dst,
envelope) and may drop it — partitions and targeted DoS are built from
this mechanism (see :mod:`repro.adversary`). A second hook,
``link_shaper``, rewrites per-message delivery *times*: it receives the
base one-way latency and returns the list of arrival delays, so delay
spikes, duplication, and reordering faults (see :mod:`repro.chaos`) are
expressed without touching the latency model.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Protocol

import numpy as np

from repro.common.errors import NetworkError
from repro.network.message import Envelope, next_msg_id
from repro.sim.loop import Environment, Signal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.bus import TraceBus


class SupportsLatency(Protocol):
    def latency(self, src: int, dst: int) -> float: ...
    def city_of(self, user_index: int) -> str: ...


DropFilter = Callable[[int, int, Envelope], bool]
#: (src, dst, envelope, base_delay) -> arrival delays. Empty list drops
#: the message; more than one entry duplicates it (the copies share the
#: msg_id, so receivers dedup them exactly like real gossip duplicates).
LinkShaper = Callable[[int, int, Envelope, float], list[float]]
RelayPolicy = Callable[[Envelope], bool]
#: (envelope, from_index) -> admit? Runs after duplicate suppression and
#: before the inbox/relay (see :mod:`repro.runtime.admission`).
IngressPolicy = Callable[[Envelope, int], bool]

#: Messages at or below this size use the urgent egress lane (votes,
#: priority announcements, transactions) and never wait behind blocks.
URGENT_MESSAGE_BYTES = 1500


class NetworkInterface:
    """One node's attachment point to the gossip network.

    Interfaces exist for every population slot, but only *activated*
    ones own an egress process. In the classic full-agent deployment
    every interface activates at network construction (same process
    creation order as ever); the aggregated population activates an
    interface the first time its account is materialized as an agent,
    and parks it again (dormant: disconnected, no neighbors, queues
    cleared) when the agent retires.
    """

    def __init__(self, network: "GossipNetwork", index: int,
                 start_egress: bool = True) -> None:
        self._network = network
        # Tracing is fixed at network construction; cache the registry
        # handle so per-delivery guards are one attribute load, not a
        # network.obs.metrics chain.
        self._metrics = (network.obs.metrics
                         if network.obs is not None else None)
        self.index = index
        self.neighbors: list[int] = []
        self._seen: set[int] = set()
        #: Round-boundary msg-id watermarks driving :meth:`prune_seen`.
        self._seen_watermarks: deque[int] = deque()
        self.inbox: deque[Envelope] = deque()
        self.receive_signal: Signal = network.env.signal()
        #: Protocol-layer validation: called before relaying a received
        #: message; return False to accept locally but not forward.
        self.relay_policy: RelayPolicy = lambda envelope: True
        #: Optional admission gate (:mod:`repro.runtime.admission`):
        #: called with ``(envelope, from_index)`` after duplicate
        #: suppression; returning False drops the message before the
        #: inbox, the relay policy, and any forwarding.
        self.ingress: IngressPolicy | None = None
        self.disconnected = False
        self.bytes_sent = 0
        self.messages_sent = 0
        #: Per-lane egress budget in messages (tail-drop past it);
        #: ``None`` is unbounded (the pre-admission behavior).
        self.lane_budget: int | None = network.lane_budget_msgs
        self.egress_dropped = 0
        self.egress_high_water = 0
        # Two egress lanes: small control messages (votes, priorities)
        # must not queue behind bulk block transfers — they ride separate
        # TCP connections in the paper's prototype.
        self._egress_urgent: deque[tuple[Envelope, int]] = deque()
        self._egress_bulk: deque[tuple[Envelope, int]] = deque()
        self._egress_signal = network.env.signal()
        self._egress_started = False
        if start_egress:
            self.activate()

    def activate(self) -> None:
        """Bring the interface online (idempotent).

        Spawns the egress process on first activation; re-activation
        after :meth:`deactivate` just reconnects.
        """
        self.disconnected = False
        if not self._egress_started:
            self._egress_started = True
            self._network.env.process(self._egress_loop(),
                                      f"egress-{self.index}")

    def deactivate(self) -> None:
        """Park the interface: silent, unreachable, queues dropped.

        The egress process (if ever started) stays blocked on its
        signal — a parked process costs nothing in the event loop.
        """
        self.disconnected = True
        self.neighbors = []
        self._egress_urgent.clear()
        self._egress_bulk.clear()
        self.inbox.clear()

    # --- Sending ----------------------------------------------------------

    def broadcast(self, envelope: Envelope) -> None:
        """Originate a message: mark as seen and send to all neighbors."""
        self._seen.add(envelope.msg_id)
        self._send_to_neighbors(envelope, exclude=None)

    def send_to(self, envelope: Envelope, targets: list[int]) -> None:
        """Originate a message to a *subset* of neighbors.

        Honest nodes never need this; adversarial strategies use it to
        show different messages to different peers (e.g. the equivocating
        proposer of section 10.4).
        """
        self._seen.add(envelope.msg_id)
        if self.disconnected:
            return
        lane = self._lane_for(envelope)
        for target in targets:
            if target not in self.neighbors:
                raise NetworkError(f"{target} is not a neighbor of "
                                   f"{self.index}")
            self._enqueue(lane, envelope, target)
        self._egress_signal.pulse()

    def _lane_for(self, envelope: Envelope) -> deque[tuple[Envelope, int]]:
        if envelope.size <= URGENT_MESSAGE_BYTES:
            return self._egress_urgent
        return self._egress_bulk

    def _enqueue(self, lane: deque[tuple[Envelope, int]],
                 envelope: Envelope, target: int) -> None:
        """Queue one egress item, tail-dropping past the lane budget.

        Backpressure for the gossip fabric: a node whose uplink cannot
        keep up (e.g. one being used as a flood amplifier) sheds the
        *newest* traffic instead of growing the queue without bound.
        High-water marks are per-lane and audited by the chaos engine's
        ingress-bounds invariant.
        """
        budget = self.lane_budget
        if budget is not None and len(lane) >= budget:
            self.egress_dropped += 1
            if self._metrics is not None:
                self._metrics.inc("gossip.egress_dropped")
            return
        lane.append((envelope, target))
        depth = len(lane)
        if depth > self.egress_high_water:
            self.egress_high_water = depth

    def _send_to_neighbors(self, envelope: Envelope,
                           exclude: int | None) -> None:
        if self.disconnected:
            return
        lane = self._lane_for(envelope)
        for neighbor in self.neighbors:
            if neighbor != exclude:
                self._enqueue(lane, envelope, neighbor)
        self._egress_signal.pulse()

    def _egress_loop(self):
        env = self._network.env
        network = self._network
        bandwidth = network.bandwidth_bps
        urgent = self._egress_urgent
        bulk = self._egress_bulk
        metrics = self._metrics
        while True:
            while urgent or bulk:
                if urgent:
                    # Drain the urgent lane as one serialized batch: each
                    # message still occupies the uplink for its own
                    # 8*size/bw seconds (arrivals carry the cumulative
                    # offset), but the batch costs one egress wake-up and
                    # one live heap entry instead of one per neighbor.
                    batch = list(urgent)
                    urgent.clear()
                    offset = 0.0
                    items = []
                    for envelope, dst in batch:
                        if bandwidth is not None:
                            offset += envelope.size * 8.0 / bandwidth
                        self.bytes_sent += envelope.size
                        self.messages_sent += 1
                        items.append((offset, dst, envelope))
                        if metrics is not None:
                            metrics.inc("gossip.sent." + envelope.kind)
                            metrics.inc("gossip.sent_bytes." + envelope.kind,
                                        envelope.size)
                    if metrics is not None:
                        metrics.observe("gossip.egress_batch", len(batch))
                    network._transmit_batch(self.index, items)
                    if offset > 0.0:
                        # Uplink busy until the batch finishes; newly
                        # queued messages serialize after it, as before.
                        yield env.timeout(offset)
                else:
                    # Bulk transfers stay one-at-a-time so a vote arriving
                    # mid-block still preempts after the current message.
                    envelope, dst = bulk.popleft()
                    if bandwidth is not None:
                        yield env.timeout(envelope.size * 8.0 / bandwidth)
                    self.bytes_sent += envelope.size
                    self.messages_sent += 1
                    if metrics is not None:
                        metrics.inc("gossip.sent." + envelope.kind)
                        metrics.inc("gossip.sent_bytes." + envelope.kind,
                                    envelope.size)
                    network._transmit(self.index, dst, envelope)
            yield self._egress_signal.next_event()

    def discard_egress_to(self, target: int) -> int:
        """Purge queued-but-unsent items addressed to ``target``.

        Called when ``target`` is severed mid-round (peer quarantine): a
        message already queued for it would otherwise still transmit on
        the dead link — ``_deliver`` only checks the *receiver's* state,
        and a quarantined receiver is not ``disconnected``. Worse than
        wasted bytes, the stray delivery mutates the quarantined peer's
        dedup set while it is cut off, desyncing what it believes it has
        seen from what the network will re-offer after its release.
        Returns the number of items dropped.
        """
        dropped = 0
        for lane in (self._egress_urgent, self._egress_bulk):
            kept = [item for item in lane if item[1] != target]
            if len(kept) != len(lane):
                dropped += len(lane) - len(kept)
                lane.clear()
                lane.extend(kept)
        if dropped and self._metrics is not None:
            self._metrics.inc("gossip.egress_purged", dropped)
        return dropped

    # --- Receiving --------------------------------------------------------

    def _deliver(self, envelope: Envelope, from_index: int) -> None:
        metrics = self._metrics
        if self.disconnected or envelope.msg_id in self._seen:
            if metrics is not None and not self.disconnected:
                metrics.inc("gossip.dup_dropped")
            return
        ingress = self.ingress
        if ingress is not None and not ingress(envelope, from_index):
            # Rejected at admission: never buffered, routed, or relayed.
            # The msg_id deliberately does NOT enter ``_seen``: a vote
            # whose first copy arrives via a quarantined relayer must
            # stay eligible on its other gossip paths, or blocking one
            # bad neighbor would suppress honest traffic it happened to
            # deliver first (verification stays cheap — the crypto cache
            # memoizes the repeated checks).
            if metrics is not None:
                metrics.inc("gossip.ingress_rejected")
            return
        self._seen.add(envelope.msg_id)
        self.inbox.append(envelope)
        self.receive_signal.pulse()
        if metrics is not None:
            metrics.inc("gossip.recv." + envelope.kind)
            metrics.inc("gossip.recv_bytes." + envelope.kind,
                        envelope.size)
        if self.relay_policy(envelope):
            if metrics is not None:
                metrics.inc("gossip.relayed." + envelope.kind)
            self._send_to_neighbors(envelope, exclude=from_index)

    # --- Duplicate-suppression hygiene ------------------------------------

    def prune_seen(self, watermark: int, horizon_rounds: int) -> None:
        """Forget msg_ids more than ``horizon_rounds`` boundaries old.

        ``watermark`` is the process-wide next message id at this round
        boundary; ids below the watermark recorded ``horizon_rounds``
        boundaries ago belong to messages created that many rounds back.
        Dropping them bounds long soak runs: without pruning, ``_seen``
        grows with every message the simulation ever gossiped. A pruned
        duplicate that straggles in later is re-accepted once, and the
        protocol layer's stale-round checks discard it without relaying.
        """
        self._seen_watermarks.append(watermark)
        while len(self._seen_watermarks) > horizon_rounds:
            cutoff = self._seen_watermarks.popleft()
            before = len(self._seen)
            self._seen = {msg_id for msg_id in self._seen
                          if msg_id >= cutoff}
            if self._metrics is not None:
                self._metrics.inc("gossip.pruned_ids",
                                  before - len(self._seen))
                self._metrics.inc("gossip.prune_passes")


class GossipNetwork:
    """The full peer-to-peer fabric."""

    def __init__(self, env: Environment, num_nodes: int,
                 rng: np.random.Generator, latency_model: SupportsLatency,
                 peers_per_node: int = 4,
                 bandwidth_bps: float | None = 20e6,
                 seen_horizon_rounds: int | None = 2,
                 lane_budget_msgs: int | None = None,
                 obs: "TraceBus | None" = None,
                 active_indices: "list[int] | None" = None) -> None:
        if num_nodes < 2:
            raise NetworkError("gossip network needs at least 2 nodes")
        if peers_per_node < 1:
            raise NetworkError("peers_per_node must be >= 1")
        if seen_horizon_rounds is not None and seen_horizon_rounds < 1:
            raise NetworkError("seen_horizon_rounds must be >= 1 or None")
        self.env = env
        #: Optional :class:`repro.obs.TraceBus`; when ``None`` (the
        #: default) every instrumentation site below reduces to one
        #: attribute load and an ``is not None`` check. Fixed at
        #: construction — egress loops capture it once.
        self.obs = obs
        self.rng = rng
        self.latency_model = latency_model
        self.peers_per_node = peers_per_node
        self.bandwidth_bps = bandwidth_bps
        #: Rounds of duplicate-suppression memory each node keeps; ``None``
        #: disables pruning (the pre-refactor unbounded behavior).
        self.seen_horizon_rounds = seen_horizon_rounds
        #: Per-lane egress budget copied onto each interface at creation.
        self.lane_budget_msgs = lane_budget_msgs
        self.drop_filter: DropFilter | None = None
        self.link_shaper: LinkShaper | None = None
        #: Optional cache-priming hook for batched deliveries (see
        #: :class:`repro.runtime.admission.BatchVerifier`): called once
        #: per same-instant arrival group with the ``(dst, envelope)``
        #: payloads, before the group is delivered. Purely a
        #: verification-cache warm-up — it must never change semantics.
        self.batch_verifier: Callable[[list], None] | None = None
        self.messages_delivered = 0
        #: Nodes currently severed from the topology (peer quarantine);
        #: maintained by :meth:`set_quarantined`.
        self.quarantined: frozenset[int] = frozenset()
        #: Aggregated-population mode: only these slots participate in
        #: the gossip fabric. ``None`` (classic mode) means every slot
        #: is live — and follows the original construction path exactly
        #: (same egress process creation order, same topology RNG
        #: consumption).
        self.active: frozenset[int] | None = (
            frozenset(active_indices) if active_indices is not None
            else None)
        defer = self.active is not None
        self.interfaces = [NetworkInterface(self, i, start_egress=not defer)
                           for i in range(num_nodes)]
        if defer:
            for i in sorted(self.active):
                self.interfaces[i].activate()
        self.reshuffle_peers()

    @property
    def num_nodes(self) -> int:
        return len(self.interfaces)

    def reshuffle_peers(self) -> None:
        """(Re)build the random peer graph (paper: new peers each round).

        Quarantined nodes are excluded from both directions of the new
        neighbor map: they neither draw peers nor get drawn. With no
        quarantine in force the RNG consumption is exactly the original
        path, so enabling the quarantine machinery never perturbs an
        honest deployment's random choices.
        """
        n = self.num_nodes
        adjacency: list[set[int]] = [set() for _ in range(n)]
        if self.active is None and not self.quarantined:
            k = min(self.peers_per_node, n - 1)
            for node in range(n):
                peers = self.rng.choice(n - 1, size=k, replace=False)
                for peer in peers:
                    # Map [0, n-2] onto all indices except `node`.
                    target = int(peer) + (1 if peer >= node else 0)
                    adjacency[node].add(target)
                    adjacency[target].add(node)
        else:
            pool = (range(n) if self.active is None
                    else sorted(self.active))
            eligible = [i for i in pool if i not in self.quarantined]
            m = len(eligible)
            k = min(self.peers_per_node, m - 1)
            if k >= 1:
                for position, node in enumerate(eligible):
                    peers = self.rng.choice(m - 1, size=k, replace=False)
                    for peer in peers:
                        # Map [0, m-2] onto eligible positions != position.
                        target_position = int(peer) + (1 if peer >= position
                                                       else 0)
                        target = eligible[target_position]
                        adjacency[node].add(target)
                        adjacency[target].add(node)
        for node in range(n):
            self.interfaces[node].neighbors = sorted(adjacency[node])

    def set_active(self, indices) -> None:
        """Aggregated-population round boundary: swap the live slot set.

        Newly active slots are brought online (egress process spawned on
        first activation), dropped slots are parked, and the peer graph
        is rebuilt over the new active set. No-op when the set is
        unchanged — in particular, an aggregated deployment whose core
        covers the whole population never reshuffles here, keeping its
        RNG stream identical to the classic construction.
        """
        active = frozenset(indices)
        if active == self.active:
            return
        previous = self.active if self.active is not None else frozenset()
        self.active = active
        for index in sorted(previous - active):
            self.interfaces[index].deactivate()
        for index in sorted(active - previous):
            self.interfaces[index].activate()
        self.reshuffle_peers()

    def set_quarantined(self, indices) -> None:
        """Update the severed-node set and repair the topology.

        Newly quarantined nodes are cut out of the *current* graph in
        place (both directions — no reshuffle, no RNG consumption);
        releases rebuild the graph so freed peers rejoin symmetrically.
        """
        quarantined = frozenset(indices)
        if quarantined == self.quarantined:
            return
        released = self.quarantined - quarantined
        added = quarantined - self.quarantined
        self.quarantined = quarantined
        if released:
            self.reshuffle_peers()
            return
        for node in added:
            interface = self.interfaces[node]
            for neighbor in interface.neighbors:
                peer = self.interfaces[neighbor]
                if node in peer.neighbors:
                    peer.neighbors.remove(node)
                # Severing the link must also purge traffic already
                # queued for it, or the quarantined node keeps receiving
                # (and dedup-marking) relays through a link that no
                # longer exists — state it would carry back on rejoin.
                peer.discard_egress_to(node)
            interface.neighbors = []
            interface._egress_urgent.clear()
            interface._egress_bulk.clear()

    def _transmit(self, src: int, dst: int, envelope: Envelope) -> None:
        if self.drop_filter is not None and self.drop_filter(src, dst,
                                                             envelope):
            if self.obs is not None:
                self.obs.metrics.inc("gossip.filtered")
            return
        delay = self.latency_model.latency(src, dst)
        if self.link_shaper is not None:
            for shaped in self.link_shaper(src, dst, envelope, delay):
                self.env.schedule(
                    max(0.0, shaped),
                    lambda e=envelope: self._arrive(src, dst, e),
                )
            return
        self.env.schedule(
            delay,
            lambda: self._arrive(src, dst, envelope),
        )

    def _transmit_batch(self, src: int,
                        items: list[tuple[float, int, Envelope]]) -> None:
        """Batched-arrival path: one schedule for a whole egress batch.

        ``items`` carries ``(serialization_offset, dst, envelope)``; each
        message arrives at ``offset + latency(src, dst)``, exactly as the
        per-neighbor path would deliver it, but the whole batch shares one
        :class:`repro.sim.loop.BatchSchedule` (arrivals landing at the
        same instant — e.g. under the uniform latency model — share a
        single event).
        """
        drop_filter = self.drop_filter
        shaper = self.link_shaper
        latency = self.latency_model.latency
        arrivals = []
        for offset, dst, envelope in items:
            if drop_filter is not None and drop_filter(src, dst, envelope):
                if self.obs is not None:
                    self.obs.metrics.inc("gossip.filtered")
                continue
            if shaper is not None:
                for shaped in shaper(src, dst, envelope, latency(src, dst)):
                    arrivals.append((offset + max(0.0, shaped),
                                     (dst, envelope)))
                continue
            arrivals.append((offset + latency(src, dst), (dst, envelope)))
        if not arrivals:
            return

        def deliver(item: tuple[int, Envelope]) -> None:
            self.messages_delivered += 1
            self.interfaces[item[0]]._deliver(item[1], src)

        self.env.schedule_batch(arrivals, deliver,
                                prelude=self.batch_verifier)

    def _arrive(self, src: int, dst: int, envelope: Envelope) -> None:
        self.messages_delivered += 1
        self.interfaces[dst]._deliver(envelope, src)

    def end_round(self) -> None:
        """Round boundary: prune every node's duplicate-suppression set."""
        if self.seen_horizon_rounds is None:
            return
        watermark = next_msg_id()
        if self.active is None:
            interfaces = self.interfaces
        else:
            # Dormant slots receive nothing, so their _seen sets never
            # grow; skip the (possibly 10k+-slot) walk over them.
            interfaces = [self.interfaces[i] for i in sorted(self.active)]
        for interface in interfaces:
            interface.prune_seen(watermark, self.seen_horizon_rounds)

    # --- Cost accounting ----------------------------------------------

    @property
    def total_bytes_sent(self) -> int:
        return sum(iface.bytes_sent for iface in self.interfaces)

    def bytes_sent_per_node(self) -> list[int]:
        return [iface.bytes_sent for iface in self.interfaces]
