"""WAN latency model.

The paper's testbed assigns each machine to one of 20 major cities and
models inter-machine latency with measured inter-city ping times [53],
with negligible latency within a city. We reproduce that shape: 20 cities
with great-circle distances converted to one-way latencies at effective
fiber propagation speed (~200,000 km/s, i.e. 2/3 c) plus a fixed routing
overhead, and per-link jitter drawn deterministically from the simulation
seed. Resulting one-way latencies span ~5 ms (same city) to ~150 ms
(antipodal pairs), matching public WonderNetwork measurements to within
the fidelity this reproduction needs.
"""

from __future__ import annotations

import math

import numpy as np

#: (name, latitude, longitude) of the 20 cities used by the latency model.
CITIES: list[tuple[str, float, float]] = [
    ("New York", 40.71, -74.01),
    ("Los Angeles", 34.05, -118.24),
    ("Chicago", 41.88, -87.63),
    ("Toronto", 43.65, -79.38),
    ("Sao Paulo", -23.55, -46.63),
    ("London", 51.51, -0.13),
    ("Paris", 48.86, 2.35),
    ("Frankfurt", 50.11, 8.68),
    ("Madrid", 40.42, -3.70),
    ("Stockholm", 59.33, 18.07),
    ("Moscow", 55.76, 37.62),
    ("Mumbai", 19.08, 72.88),
    ("Singapore", 1.35, 103.82),
    ("Hong Kong", 22.32, 114.17),
    ("Tokyo", 35.68, 139.65),
    ("Seoul", 37.57, 126.98),
    ("Sydney", -33.87, 151.21),
    ("Johannesburg", -26.20, 28.05),
    ("Dubai", 25.20, 55.27),
    ("Mexico City", 19.43, -99.13),
]

#: Effective propagation speed of long-haul fiber, km per second.
FIBER_KM_PER_SEC = 200_000.0
#: Fixed per-link routing/serialization overhead, seconds.
LINK_OVERHEAD_SEC = 0.005
#: One-way latency between two users in the same city, seconds.
SAME_CITY_LATENCY = 0.001

_EARTH_RADIUS_KM = 6371.0


def great_circle_km(lat1: float, lon1: float, lat2: float,
                    lon2: float) -> float:
    """Great-circle distance (haversine), kilometres."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lon2 - lon1)
    a = (math.sin(dphi / 2) ** 2
         + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2) ** 2)
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def base_latency_matrix() -> np.ndarray:
    """One-way latency (seconds) between each pair of the 20 cities."""
    n = len(CITIES)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            _, lat1, lon1 = CITIES[i]
            _, lat2, lon2 = CITIES[j]
            km = great_circle_km(lat1, lon1, lat2, lon2)
            # Fiber paths are not great circles; 1.4x path stretch.
            latency = LINK_OVERHEAD_SEC + 1.4 * km / FIBER_KM_PER_SEC
            matrix[i, j] = matrix[j, i] = latency
    np.fill_diagonal(matrix, SAME_CITY_LATENCY)
    return matrix


class LatencyModel:
    """Assigns users to cities and answers per-pair latency queries."""

    def __init__(self, num_users: int, rng: np.random.Generator,
                 jitter_fraction: float = 0.10) -> None:
        if num_users < 1:
            raise ValueError("num_users must be >= 1")
        if not 0 <= jitter_fraction < 1:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self._matrix = base_latency_matrix()
        self._city_of = rng.integers(0, len(CITIES), size=num_users)
        self._rng = rng
        self._jitter = jitter_fraction

    def city_of(self, user_index: int) -> str:
        return CITIES[self._city_of[user_index]][0]

    def latency(self, src: int, dst: int) -> float:
        """One-way latency sample between two users (with jitter)."""
        base = self._matrix[self._city_of[src], self._city_of[dst]]
        if self._jitter == 0:
            return float(base)
        factor = 1.0 + self._jitter * float(self._rng.standard_normal())
        return float(base * max(0.25, factor))


class UniformLatencyModel:
    """Constant-latency model for controlled experiments and tests."""

    def __init__(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self._latency = latency

    def city_of(self, user_index: int) -> str:
        return "uniform"

    def latency(self, src: int, dst: int) -> float:
        return self._latency
