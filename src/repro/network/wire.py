"""Wire format: byte encodings for every protocol message.

The simulator moves Python objects and charges bandwidth using calibrated
size constants (matching the paper's reported ~200-byte priority messages
and ~250-byte votes). This module provides the real, deterministic byte
encodings a deployment would put on the wire — used for (a) size-constant
calibration tests, (b) persisting chains, and (c) hashing/signing
consistency guarantees (everything routes through the canonical codec).
"""

from __future__ import annotations

from typing import Any

from repro.baplus.certificate import Certificate
from repro.baplus.messages import VoteMessage
from repro.common.encoding import decode, encode
from repro.common.errors import ReproError
from repro.ledger.block import Block
from repro.ledger.transaction import Transaction
from repro.node.proposal import PriorityMessage


class WireError(ReproError):
    """A wire payload could not be decoded."""


def _expect(data: Any, tag: str) -> list:
    if not isinstance(data, list) or not data or data[0] != tag:
        raise WireError(f"expected {tag!r} payload")
    return data


# --- Transactions ---------------------------------------------------------

def encode_transaction(tx: Transaction) -> bytes:
    return encode(["wtx", tx.sender, tx.recipient, tx.amount, tx.nonce,
                   tx.note, tx.signature])


def decode_transaction(data: bytes) -> Transaction:
    try:
        fields = _expect(decode(data), "wtx")
        _, sender, recipient, amount, nonce, note, signature = fields
        return Transaction(sender=sender, recipient=recipient,
                           amount=amount, nonce=nonce, note=note,
                           signature=signature)
    except (ValueError, TypeError) as exc:
        raise WireError(f"bad transaction payload: {exc}") from exc


# --- Votes ----------------------------------------------------------------

def encode_vote(vote: VoteMessage) -> bytes:
    return encode(["wvote", vote.voter, vote.round_number, vote.step,
                   vote.sorthash, vote.sortproof, vote.prev_hash,
                   vote.value, vote.signature])


def decode_vote(data: bytes) -> VoteMessage:
    try:
        fields = _expect(decode(data), "wvote")
        (_, voter, round_number, step, sorthash, sortproof, prev_hash,
         value, signature) = fields
        return VoteMessage(voter=voter, round_number=round_number,
                           step=step, sorthash=sorthash,
                           sortproof=sortproof, prev_hash=prev_hash,
                           value=value, signature=signature)
    except (ValueError, TypeError) as exc:
        raise WireError(f"bad vote payload: {exc}") from exc


# --- Priority announcements -------------------------------------------------

def encode_priority(message: PriorityMessage) -> bytes:
    return encode(["wprio", message.proposer, message.round_number,
                   message.vrf_hash, message.vrf_proof,
                   message.sub_users, message.priority])


def decode_priority(data: bytes) -> PriorityMessage:
    try:
        fields = _expect(decode(data), "wprio")
        _, proposer, round_number, vrf_hash, vrf_proof, sub_users, priority = fields
        return PriorityMessage(proposer=proposer,
                               round_number=round_number,
                               vrf_hash=vrf_hash, vrf_proof=vrf_proof,
                               sub_users=sub_users, priority=priority)
    except (ValueError, TypeError) as exc:
        raise WireError(f"bad priority payload: {exc}") from exc


# --- Blocks -----------------------------------------------------------------

def encode_block(block: Block) -> bytes:
    return encode([
        "wblock", block.round_number, block.prev_hash, block.timestamp,
        block.seed, block.seed_proof, block.proposer,
        block.proposer_vrf_hash, block.proposer_vrf_proof,
        block.proposer_priority,
        [encode_transaction(tx) for tx in block.transactions],
    ])


def decode_block(data: bytes) -> Block:
    try:
        fields = _expect(decode(data), "wblock")
        (_, round_number, prev_hash, timestamp, seed, seed_proof,
         proposer, vrf_hash, vrf_proof, priority, raw_txs) = fields
        return Block(
            round_number=round_number, prev_hash=prev_hash,
            timestamp=timestamp, seed=seed, seed_proof=seed_proof,
            proposer=proposer, proposer_vrf_hash=vrf_hash,
            proposer_vrf_proof=vrf_proof, proposer_priority=priority,
            transactions=tuple(decode_transaction(raw) for raw in raw_txs),
        )
    except (ValueError, TypeError) as exc:
        raise WireError(f"bad block payload: {exc}") from exc


# --- Certificates -----------------------------------------------------------

def encode_certificate(certificate: Certificate) -> bytes:
    return encode([
        "wcert", certificate.round_number, certificate.step,
        certificate.value,
        [encode_vote(vote) for vote in certificate.votes],
    ])


def decode_certificate(data: bytes) -> Certificate:
    try:
        fields = _expect(decode(data), "wcert")
        _, round_number, step, value, raw_votes = fields
        return Certificate(
            round_number=round_number, step=step, value=value,
            votes=tuple(decode_vote(raw) for raw in raw_votes),
        )
    except (ValueError, TypeError) as exc:
        raise WireError(f"bad certificate payload: {exc}") from exc


def wire_size(obj: Transaction | VoteMessage | PriorityMessage | Block
              | Certificate) -> int:
    """Exact encoded size of any protocol message."""
    if isinstance(obj, Transaction):
        return len(encode_transaction(obj))
    if isinstance(obj, VoteMessage):
        return len(encode_vote(obj))
    if isinstance(obj, PriorityMessage):
        return len(encode_priority(obj))
    if isinstance(obj, Block):
        return len(encode_block(obj))
    if isinstance(obj, Certificate):
        return len(encode_certificate(obj))
    raise TypeError(f"no wire format for {type(obj).__name__}")
