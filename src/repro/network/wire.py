"""Wire format: byte encodings for every protocol message.

The simulator moves Python objects and charges bandwidth using calibrated
size constants (matching the paper's reported ~200-byte priority messages
and ~250-byte votes). This module provides the real, deterministic byte
encodings a deployment would put on the wire — used for (a) size-constant
calibration tests, (b) persisting chains, (c) hashing/signing consistency
guarantees (everything routes through the canonical codec), and (d) the
live substrate (:mod:`repro.live`), whose node processes exchange these
bytes over real TCP/Unix-domain sockets.

Two layers live here:

* **Payload codecs** — ``encode_vote``/``decode_vote`` and friends, one
  pair per protocol message type, plus ``encode_envelope``/
  ``decode_envelope`` wrapping a payload with its gossip routing
  metadata (msg_id, origin, kind, logical size).
* **Framing** — :func:`encode_frame` and :class:`FrameDecoder`
  length-prefix payloads so they survive a TCP byte stream: reads may
  arrive split or coalesced arbitrarily, and the decoder reassembles
  exact payload boundaries. Oversized or garbage frames raise
  :class:`WireError` instead of silently desyncing the stream.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.baplus.certificate import Certificate
from repro.baplus.messages import VoteMessage
from repro.common.encoding import decode, encode
from repro.common.errors import ReproError
from repro.ledger.block import Block
from repro.ledger.transaction import Transaction
from repro.node.proposal import PriorityMessage


class WireError(ReproError):
    """A wire payload could not be decoded."""


class FrameSizeError(WireError):
    """A frame length prefix is zero or beyond the size cap.

    A stream that produced one is desynced or hostile: there is no
    recoverable frame boundary, so the connection must be dropped. The
    dedicated type lets transports distinguish "drop this connection"
    from ordinary payload-decode garbage inside a well-formed frame.
    """


def _expect(data: Any, tag: str) -> list:
    if not isinstance(data, list) or not data or data[0] != tag:
        raise WireError(f"expected {tag!r} payload")
    return data


# --- Transactions ---------------------------------------------------------

def encode_transaction(tx: Transaction) -> bytes:
    return encode(["wtx", tx.sender, tx.recipient, tx.amount, tx.nonce,
                   tx.note, tx.signature])


def decode_transaction(data: bytes) -> Transaction:
    try:
        fields = _expect(decode(data), "wtx")
        _, sender, recipient, amount, nonce, note, signature = fields
        return Transaction(sender=sender, recipient=recipient,
                           amount=amount, nonce=nonce, note=note,
                           signature=signature)
    except (ValueError, TypeError) as exc:
        raise WireError(f"bad transaction payload: {exc}") from exc


# --- Votes ----------------------------------------------------------------

def encode_vote(vote: VoteMessage) -> bytes:
    return encode(["wvote", vote.voter, vote.round_number, vote.step,
                   vote.sorthash, vote.sortproof, vote.prev_hash,
                   vote.value, vote.signature])


def decode_vote(data: bytes) -> VoteMessage:
    try:
        fields = _expect(decode(data), "wvote")
        (_, voter, round_number, step, sorthash, sortproof, prev_hash,
         value, signature) = fields
        return VoteMessage(voter=voter, round_number=round_number,
                           step=step, sorthash=sorthash,
                           sortproof=sortproof, prev_hash=prev_hash,
                           value=value, signature=signature)
    except (ValueError, TypeError) as exc:
        raise WireError(f"bad vote payload: {exc}") from exc


# --- Priority announcements -------------------------------------------------

def encode_priority(message: PriorityMessage) -> bytes:
    return encode(["wprio", message.proposer, message.round_number,
                   message.vrf_hash, message.vrf_proof,
                   message.sub_users, message.priority])


def decode_priority(data: bytes) -> PriorityMessage:
    try:
        fields = _expect(decode(data), "wprio")
        _, proposer, round_number, vrf_hash, vrf_proof, sub_users, priority = fields
        return PriorityMessage(proposer=proposer,
                               round_number=round_number,
                               vrf_hash=vrf_hash, vrf_proof=vrf_proof,
                               sub_users=sub_users, priority=priority)
    except (ValueError, TypeError) as exc:
        raise WireError(f"bad priority payload: {exc}") from exc


# --- Blocks -----------------------------------------------------------------

def encode_block(block: Block) -> bytes:
    return encode([
        "wblock", block.round_number, block.prev_hash, block.timestamp,
        block.seed, block.seed_proof, block.proposer,
        block.proposer_vrf_hash, block.proposer_vrf_proof,
        block.proposer_priority,
        [encode_transaction(tx) for tx in block.transactions],
    ])


def decode_block(data: bytes) -> Block:
    try:
        fields = _expect(decode(data), "wblock")
        (_, round_number, prev_hash, timestamp, seed, seed_proof,
         proposer, vrf_hash, vrf_proof, priority, raw_txs) = fields
        return Block(
            round_number=round_number, prev_hash=prev_hash,
            timestamp=timestamp, seed=seed, seed_proof=seed_proof,
            proposer=proposer, proposer_vrf_hash=vrf_hash,
            proposer_vrf_proof=vrf_proof, proposer_priority=priority,
            transactions=tuple(decode_transaction(raw) for raw in raw_txs),
        )
    except (ValueError, TypeError) as exc:
        raise WireError(f"bad block payload: {exc}") from exc


# --- Certificates -----------------------------------------------------------

def encode_certificate(certificate: Certificate) -> bytes:
    return encode([
        "wcert", certificate.round_number, certificate.step,
        certificate.value,
        [encode_vote(vote) for vote in certificate.votes],
    ])


def decode_certificate(data: bytes) -> Certificate:
    try:
        fields = _expect(decode(data), "wcert")
        _, round_number, step, value, raw_votes = fields
        return Certificate(
            round_number=round_number, step=step, value=value,
            votes=tuple(decode_vote(raw) for raw in raw_votes),
        )
    except (ValueError, TypeError) as exc:
        raise WireError(f"bad certificate payload: {exc}") from exc


# --- Chain sync (catch-up request / announcement) ---------------------------

def encode_chain_request(request: "ChainRequest") -> bytes:
    return encode(["wchainreq", request.height])


def decode_chain_request(data: bytes) -> "ChainRequest":
    from repro.node.catchup import ChainRequest

    try:
        fields = _expect(decode(data), "wchainreq")
        _, height = fields
        if not isinstance(height, int) or height < 0:
            raise WireError("chain request height must be a non-negative "
                            "integer")
        return ChainRequest(height=height)
    except (ValueError, TypeError) as exc:
        raise WireError(f"bad chain request payload: {exc}") from exc


def encode_chain_announcement(announcement: "ChainAnnouncement") -> bytes:
    return encode([
        "wchain",
        [encode_block(block) for block in announcement.blocks],
        [[round_number, encode_certificate(certificate)]
         for round_number, certificate
         in sorted(announcement.certificates.items())],
    ])


def decode_chain_announcement(data: bytes) -> "ChainAnnouncement":
    from repro.node.catchup import ChainAnnouncement

    try:
        fields = _expect(decode(data), "wchain")
        _, raw_blocks, raw_certs = fields
        return ChainAnnouncement(
            blocks=tuple(decode_block(raw) for raw in raw_blocks),
            certificates={round_number: decode_certificate(raw)
                          for round_number, raw in raw_certs},
        )
    except (ValueError, TypeError) as exc:
        raise WireError(f"bad chain announcement payload: {exc}") from exc


def wire_size(obj: Transaction | VoteMessage | PriorityMessage | Block
              | Certificate) -> int:
    """Exact encoded size of any protocol message."""
    if isinstance(obj, Transaction):
        return len(encode_transaction(obj))
    if isinstance(obj, VoteMessage):
        return len(encode_vote(obj))
    if isinstance(obj, PriorityMessage):
        return len(encode_priority(obj))
    if isinstance(obj, Block):
        return len(encode_block(obj))
    if isinstance(obj, Certificate):
        return len(encode_certificate(obj))
    raise TypeError(f"no wire format for {type(obj).__name__}")


# --- Envelopes (gossip routing metadata + payload) --------------------------

#: Per-kind payload codecs: the envelope codec dispatches through this
#: table, so a kind without a real byte encoding (e.g. the in-simulation
#: recovery/chain-sync extension messages) fails loudly at encode time.
ENVELOPE_CODECS: dict[str, tuple] = {
    "tx": (encode_transaction, decode_transaction),
    "vote": (encode_vote, decode_vote),
    "priority": (encode_priority, decode_priority),
    "block": (encode_block, decode_block),
    "cert": (encode_certificate, decode_certificate),
    "chain": (encode_chain_announcement, decode_chain_announcement),
    "chainreq": (encode_chain_request, decode_chain_request),
}


def encode_envelope(envelope) -> bytes:
    """Serialize a gossip envelope (metadata + payload) to bytes.

    The logical ``size`` (the simulator's calibrated bandwidth charge)
    rides along so both substrates account identically. Raises
    :class:`WireError` for kinds without a registered payload codec.
    """
    codec = ENVELOPE_CODECS.get(envelope.kind)
    if codec is None:
        raise WireError(
            f"no wire codec for envelope kind {envelope.kind!r} "
            f"(known: {sorted(ENVELOPE_CODECS)})")
    return encode(["wenv", envelope.msg_id, envelope.origin, envelope.kind,
                   codec[0](envelope.payload), envelope.size])


def decode_envelope(data: bytes):
    """Inverse of :func:`encode_envelope`; returns a fresh ``Envelope``."""
    from repro.network.message import Envelope

    try:
        fields = _expect(decode(data), "wenv")
        _, msg_id, origin, kind, payload_bytes, size = fields
    except (ValueError, TypeError) as exc:
        raise WireError(f"bad envelope payload: {exc}") from exc
    codec = ENVELOPE_CODECS.get(kind)
    if codec is None:
        raise WireError(f"unknown envelope kind {kind!r}")
    if not isinstance(msg_id, int) or not isinstance(size, int):
        raise WireError("envelope msg_id/size must be integers")
    try:
        payload = codec[1](payload_bytes)
    except (ValueError, TypeError) as exc:
        raise WireError(f"bad {kind} envelope payload: {exc}") from exc
    return Envelope(origin=origin, kind=kind, payload=payload, size=size,
                    msg_id=msg_id)


# --- Framing (length-prefixed, stream-safe) ---------------------------------

#: Frame header: 4-byte big-endian payload length.
FRAME_HEADER = struct.Struct(">I")

#: Default ceiling on one frame's payload. Generous against the largest
#: legitimate message (a ~1 MB block plus envelope overhead) while small
#: enough that a garbage length prefix is detected immediately instead
#: of stalling a reader waiting for gigabytes that will never come.
MAX_FRAME_BYTES = 8 * 1024 * 1024


def encode_frame(payload: bytes,
                 max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Length-prefix ``payload`` for transmission over a byte stream."""
    if not payload:
        raise FrameSizeError("cannot frame an empty payload")
    if len(payload) > max_bytes:
        raise FrameSizeError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_bytes}-byte limit")
    return FRAME_HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary chunking.

    Feed raw stream bytes as they arrive (split or coalesced however the
    transport pleases); :meth:`feed` returns every complete payload the
    new bytes finished. A length prefix of zero or beyond ``max_bytes``
    raises :class:`FrameSizeError` — a desynced or malicious stream is
    unrecoverable, so the connection must be dropped, not resynced. The
    decoder never buffers more than one header plus ``max_bytes`` of an
    incomplete frame, so a garbage length prefix cannot make it hoard
    memory.
    """

    __slots__ = ("max_bytes", "_buffer", "frames_decoded", "bytes_fed")

    def __init__(self, max_bytes: int = MAX_FRAME_BYTES) -> None:
        if max_bytes < 1:
            raise WireError("max_bytes must be >= 1")
        self.max_bytes = max_bytes
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.bytes_fed = 0

    @property
    def buffered(self) -> int:
        """Bytes held waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; return all payloads completed by it."""
        self.bytes_fed += len(data)
        self._buffer += data
        frames: list[bytes] = []
        header = FRAME_HEADER.size
        while len(self._buffer) >= header:
            (length,) = FRAME_HEADER.unpack_from(self._buffer)
            if length == 0:
                raise FrameSizeError("zero-length frame")
            if length > self.max_bytes:
                raise FrameSizeError(
                    f"frame length {length} exceeds the "
                    f"{self.max_bytes}-byte limit (desynced or garbage "
                    f"stream)")
            if len(self._buffer) < header + length:
                break
            frames.append(bytes(self._buffer[header:header + length]))
            del self._buffer[:header + length]
            self.frames_decoded += 1
        return frames
