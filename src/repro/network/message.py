"""Gossip message envelopes.

The network layer treats protocol payloads as opaque; an envelope carries
the routing metadata it needs: a unique id (for duplicate suppression), the
originator's public key, a message kind (so relay policies can rate-limit
per kind), and the wire size in bytes (driving bandwidth costs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Wire size of a priority/proof gossip message ("about 200 bytes", §6).
PRIORITY_MESSAGE_BYTES = 200
#: Wire size of a committee vote (pk + sig + sortition hash/proof + value).
VOTE_MESSAGE_BYTES = 250


class _MessageIdCounter:
    """Monotone id source; peekable so seen-sets can prune by age.

    Message ids increase in creation order across the whole process, so
    ``next_msg_id()`` doubles as a watermark: every envelope created
    before the peek has a strictly smaller id (the basis of
    :meth:`repro.network.gossip.NetworkInterface.prune_seen`).
    """

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = 0

    def take(self) -> int:
        value = self._next
        self._next = value + 1
        return value

    def peek(self) -> int:
        return self._next


_id_counter = _MessageIdCounter()


def next_msg_id() -> int:
    """The id the *next* created envelope will get (a pruning watermark)."""
    return _id_counter.peek()


@dataclass(frozen=True)
class Envelope:
    """One gossiped message."""

    origin: bytes
    kind: str
    payload: Any
    size: int
    msg_id: int = field(default_factory=_id_counter.take)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"message size must be positive, got {self.size}")


def priority_envelope(origin: bytes, payload: Any) -> Envelope:
    """Envelope for a block-proposal priority message (small, fast)."""
    return Envelope(origin=origin, kind="priority", payload=payload,
                    size=PRIORITY_MESSAGE_BYTES)


def block_envelope(origin: bytes, payload: Any, size: int) -> Envelope:
    """Envelope for a full proposed block."""
    return Envelope(origin=origin, kind="block", payload=payload, size=size)


def vote_envelope(origin: bytes, payload: Any) -> Envelope:
    """Envelope for a BA* committee vote."""
    return Envelope(origin=origin, kind="vote", payload=payload,
                    size=VOTE_MESSAGE_BYTES)


def transaction_envelope(origin: bytes, payload: Any, size: int) -> Envelope:
    """Envelope for a user-submitted pending transaction."""
    return Envelope(origin=origin, kind="tx", payload=payload, size=size)
