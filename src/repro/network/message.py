"""Gossip message envelopes.

The network layer treats protocol payloads as opaque; an envelope carries
the routing metadata it needs: a unique id (for duplicate suppression), the
originator's public key, a message kind (so relay policies can rate-limit
per kind), and the wire size in bytes (driving bandwidth costs).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

#: Wire size of a priority/proof gossip message ("about 200 bytes", §6).
PRIORITY_MESSAGE_BYTES = 200
#: Wire size of a committee vote (pk + sig + sortition hash/proof + value).
VOTE_MESSAGE_BYTES = 250

_id_counter = itertools.count()


@dataclass(frozen=True)
class Envelope:
    """One gossiped message."""

    origin: bytes
    kind: str
    payload: Any
    size: int
    msg_id: int = field(default_factory=lambda: next(_id_counter))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"message size must be positive, got {self.size}")


def priority_envelope(origin: bytes, payload: Any) -> Envelope:
    """Envelope for a block-proposal priority message (small, fast)."""
    return Envelope(origin=origin, kind="priority", payload=payload,
                    size=PRIORITY_MESSAGE_BYTES)


def block_envelope(origin: bytes, payload: Any, size: int) -> Envelope:
    """Envelope for a full proposed block."""
    return Envelope(origin=origin, kind="block", payload=payload, size=size)


def vote_envelope(origin: bytes, payload: Any) -> Envelope:
    """Envelope for a BA* committee vote."""
    return Envelope(origin=origin, kind="vote", payload=payload,
                    size=VOTE_MESSAGE_BYTES)


def transaction_envelope(origin: bytes, payload: Any, size: int) -> Envelope:
    """Envelope for a user-submitted pending transaction."""
    return Envelope(origin=origin, kind="tx", payload=payload, size=size)
