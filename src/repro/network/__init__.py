"""Simulated gossip network: topology, latency model, message envelopes."""

from repro.network.gossip import GossipNetwork, NetworkInterface
from repro.network.latency import (
    CITIES,
    LatencyModel,
    UniformLatencyModel,
    base_latency_matrix,
    great_circle_km,
)
from repro.network.message import (
    Envelope,
    PRIORITY_MESSAGE_BYTES,
    VOTE_MESSAGE_BYTES,
    block_envelope,
    priority_envelope,
    transaction_envelope,
    vote_envelope,
)

__all__ = [
    "GossipNetwork",
    "NetworkInterface",
    "LatencyModel",
    "UniformLatencyModel",
    "CITIES",
    "base_latency_matrix",
    "great_circle_km",
    "Envelope",
    "priority_envelope",
    "block_envelope",
    "vote_envelope",
    "transaction_envelope",
    "PRIORITY_MESSAGE_BYTES",
    "VOTE_MESSAGE_BYTES",
]
