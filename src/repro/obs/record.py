"""Record a traced simulation to a JSONL file.

The smallest end-to-end path through the observability stack::

    python -m repro.obs.record --users 10 --rounds 2 --out trace.jsonl
    python -m repro.obs.report trace.jsonl

CI runs exactly this pair as a smoke test and uploads the trace as a
build artifact; it is also the quickest way to get a real trace to poke
at when adding a new event kind.
"""

from __future__ import annotations

import argparse

from repro.obs.bus import TraceBus
from repro.obs.sink import JsonlTraceSink


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.record",
        description="Run a small simulation with tracing enabled and "
                    "write the JSONL trace.")
    parser.add_argument("--users", type=int, default=10)
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--payments", type=int, default=20)
    parser.add_argument("--out", default="trace.jsonl",
                        help="output trace path (default: trace.jsonl)")
    args = parser.parse_args(argv)

    # Imported here so `--help` works without numpy/scipy installed.
    from repro.experiments.harness import Simulation, SimulationConfig

    bus = TraceBus()
    sink = JsonlTraceSink(args.out)
    bus.add_sink(sink)
    sim = Simulation(SimulationConfig(num_users=args.users, seed=args.seed),
                     obs=bus)
    sim.submit_payments(args.payments)
    sim.run_rounds(args.rounds)
    snapshot = bus.close()
    counters = snapshot["counters"]
    print(f"wrote {args.out}: {len(bus.events)} events + snapshot "
          f"({sink.records_written} records)")
    print(f"  chain height {sim.nodes[0].chain.height}, "
          f"all chains equal: {sim.all_chains_equal()}")
    print(f"  cache {counters.get('cache.hits', 0)} hits / "
          f"{counters.get('cache.misses', 0)} misses; "
          f"router unknown-kind drops: "
          f"{counters.get('router.unknown_kind', 0)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
