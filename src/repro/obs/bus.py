"""The trace event bus.

A :class:`TraceBus` is the single object a simulation shares across its
layers to record *what happened when*: structured events stamped with
the simulated clock, the originating node, the round, and the BA⋆ step,
plus a :class:`~repro.obs.metrics.MetricsRegistry` for the counters that
are too hot to emit per-occurrence (gossip traffic, router dispatches,
event-loop fast paths).

Wiring contract (how near-zero disabled overhead is achieved):

* Instrumented components hold an ``obs`` attribute that is either a
  ``TraceBus`` or ``None``. Every instrumentation site is guarded by
  ``if obs is not None`` — with tracing disabled a site costs one
  attribute load and one comparison, nothing else. No global flag, no
  logging machinery, no string formatting.
* The bus never touches randomness or scheduling, so a traced run and an
  untraced run of the same seed produce byte-identical chains (tested).

Event schema (see docs/OBSERVABILITY.md for the kind catalogue)::

    {"t": <simulated seconds>, "kind": "<event kind>",
     "node": <int, optional>, "round": <int, optional>,
     "step": <str, optional>, ...kind-specific fields...}

Events are kept in a bounded in-memory list (oldest runs are small; for
long soaks attach a :class:`~repro.obs.sink.JsonlTraceSink` and lower
``max_events``); overflow increments :attr:`dropped_events` rather than
growing without bound.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

from repro.obs.events import validate_record, validation_default
from repro.obs.metrics import MetricsRegistry


class TraceSink(Protocol):
    """Where a bus streams its records (e.g. a JSONL file)."""

    def write_event(self, record: dict) -> None: ...
    def write_snapshot(self, snapshot: dict) -> None: ...
    def close(self) -> None: ...


def _default_clock() -> float:
    return 0.0


class TraceBus:
    """Structured event stream + metrics registry for one simulation."""

    __slots__ = ("metrics", "events", "max_events", "dropped_events",
                 "_clock", "_sinks", "_harvesters", "closed", "validate")

    def __init__(self, *, registry: MetricsRegistry | None = None,
                 max_events: int = 1_000_000,
                 validate: bool | None = None) -> None:
        if max_events < 0:
            raise ValueError("max_events must be >= 0")
        self.metrics = registry if registry is not None else MetricsRegistry()
        #: Check every emitted record against the
        #: :data:`repro.obs.events.EVENT_KINDS` catalogue. ``None``
        #: resolves from the ``REPRO_OBS_VALIDATE`` environment variable
        #: (off by default — the emit path is hot, and ad-hoc kinds are
        #: legitimate in unit tests).
        self.validate = (validation_default() if validate is None
                         else validate)
        #: In-memory event records, in emission order (bounded).
        self.events: list[dict] = []
        self.max_events = max_events
        #: Events discarded because ``max_events`` was reached.
        self.dropped_events = 0
        self._clock: Callable[[], float] = _default_clock
        self._sinks: list[TraceSink] = []
        self._harvesters: list[Callable[["TraceBus"], None]] = []
        self.closed = False

    # -- wiring --------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Use ``clock()`` (typically ``lambda: env.now``) for timestamps."""
        self._clock = clock

    def add_sink(self, sink: TraceSink) -> None:
        self._sinks.append(sink)

    def add_harvester(self, harvester: Callable[["TraceBus"], None]) -> None:
        """Register a callback that pulls lazy counters into the registry.

        Harvesters run at every :meth:`snapshot`; they exist so hot
        components can keep plain instance counters (``env.events_processed``,
        ``cache.hits``) and only pay a registry write at read time.
        """
        self._harvesters.append(harvester)

    # -- emission (the guarded hot path) -------------------------------

    def emit(self, kind: str, *, node: int | None = None,
             round: int | None = None, step: str | None = None,
             **fields: Any) -> None:
        """Record one structured event at the current simulated time."""
        record: dict[str, Any] = {"t": self._clock(), "kind": kind}
        if node is not None:
            record["node"] = node
        if round is not None:
            record["round"] = round
        if step is not None:
            record["step"] = step
        if fields:
            record.update(fields)
        if self.validate:
            validate_record(record)
        if len(self.events) < self.max_events:
            self.events.append(record)
        else:
            self.dropped_events += 1
        for sink in self._sinks:
            sink.write_event(record)

    # -- reading -------------------------------------------------------

    def events_of_kind(self, kind: str) -> list[dict]:
        return [event for event in self.events if event["kind"] == kind]

    def snapshot(self) -> dict:
        """Run harvesters, then return the registry snapshot."""
        for harvester in self._harvesters:
            harvester(self)
        sink_dropped = sum(getattr(sink, "dropped", 0)
                           for sink in self._sinks)
        if sink_dropped:
            # A sink that sheds records makes the persisted trace an
            # unsound input for offline analysis (conformance, reports);
            # surface the loss as a first-class gauge.
            self.metrics.set_gauge("obs.sink_dropped", sink_dropped)
        snapshot = self.metrics.snapshot()
        if self.dropped_events:
            snapshot["dropped_events"] = self.dropped_events
        return snapshot

    def close(self) -> dict:
        """Final snapshot: append it to every sink and close them.

        Idempotent; returns the snapshot so callers can embed it in
        their own results.
        """
        snapshot = self.snapshot()
        if not self.closed:
            self.closed = True
            for sink in self._sinks:
                sink.write_snapshot(snapshot)
                sink.close()
        return snapshot
