"""JSONL trace persistence with bounded buffering.

One trace file is a sequence of JSON objects, one per line:

* ``{"type": "event", ...event fields...}`` — emitted in order;
* ``{"type": "snapshot", "metrics": {...}}`` — the final registry
  snapshot, appended by :meth:`repro.obs.bus.TraceBus.close`.

``bytes`` values (block hashes, public keys) are hex-encoded on write so
the file is plain text; :func:`read_trace` does *not* undo this — hex
strings are what the report CLI and downstream tooling consume.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO


def _json_default(value: object) -> str:
    if isinstance(value, bytes):
        return value.hex()
    raise TypeError(
        f"unserializable trace field of type {type(value).__name__}")


class JsonlTraceSink:
    """Streams trace records to a ``.jsonl`` file.

    Records are serialized immediately but written through a line buffer
    of ``buffer_lines`` entries, so a hot emitter costs one ``dumps``
    and a list append per event rather than a syscall. The buffer is
    flushed when full, on :meth:`write_snapshot`, and on :meth:`close`.

    ``max_records`` optionally bounds the file: event records beyond the
    bound are **counted, not written** — :attr:`dropped` reports the
    loss, the bus surfaces it as the ``obs.sink_dropped`` gauge, and the
    report/conformance CLIs warn that such a trace is incomplete. The
    snapshot record is always written (it carries the loss accounting).
    ``None`` (the default) keeps the file unbounded.
    """

    def __init__(self, path: str | Path, *, buffer_lines: int = 1024,
                 max_records: int | None = None,
                 durable: bool = False) -> None:
        if buffer_lines < 1:
            raise ValueError("buffer_lines must be >= 1")
        if max_records is not None and max_records < 0:
            raise ValueError("max_records must be >= 0 or None")
        self.path = Path(path)
        self.buffer_lines = buffer_lines
        self.max_records = max_records
        #: Push every flush through to the OS (``file.flush()``). Live
        #: node processes set this (with ``buffer_lines=1``) so a
        #: SIGKILL mid-run loses at most the line being written — the
        #: chaos coordinator reads the victim's trace back after the
        #: kill. The sim default keeps the cheap buffered writes.
        self.durable = durable
        self._buffer: list[str] = []
        self._file: IO[str] | None = self.path.open("w", encoding="utf-8")
        #: Total records written (events + snapshot).
        self.records_written = 0
        #: Event records shed because ``max_records`` was reached.
        self.dropped = 0

    def _write(self, record: dict) -> None:
        if self._file is None:
            raise ValueError(f"trace sink {self.path} is closed")
        self._buffer.append(json.dumps(record, default=_json_default,
                                       separators=(",", ":")))
        self.records_written += 1
        if len(self._buffer) >= self.buffer_lines:
            self.flush()

    def write_event(self, record: dict) -> None:
        if (self.max_records is not None
                and self.records_written >= self.max_records):
            self.dropped += 1
            return
        self._write({"type": "event", **record})

    def write_snapshot(self, snapshot: dict) -> None:
        self._write({"type": "snapshot", "metrics": snapshot})
        self.flush()

    def flush(self) -> None:
        if self._buffer and self._file is not None:
            self._file.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
            if self.durable:
                self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self.flush()
            self._file.close()
            self._file = None


def read_trace(path: str | Path, *,
               tolerate_truncation: bool = False
               ) -> tuple[list[dict], dict | None]:
    """Load a JSONL trace: ``(events, snapshot_metrics_or_None)``.

    Unknown record types are ignored (forward compatibility: a newer
    writer may add record types an older reader doesn't know).
    ``tolerate_truncation`` forgives an invalid **final** line — a
    SIGKILLed live node can die mid-write, leaving half a record; every
    complete line before it is still good evidence. Garbage anywhere
    else still raises.
    """
    events: list[dict] = []
    snapshot: dict | None = None
    with Path(path).open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if tolerate_truncation and line_number == len(lines):
                break
            raise ValueError(
                f"{path}:{line_number}: invalid JSON ({exc})") from exc
        kind = record.get("type")
        if kind == "event":
            record.pop("type")
            events.append(record)
        elif kind == "snapshot":
            snapshot = record.get("metrics")
    return events, snapshot
