"""Zero-dependency metrics registry: counters, gauges, summary histograms.

Every ad-hoc counter in the codebase (VerificationCache hit/miss,
MessageRouter unknown-kind drops, gossip per-kind traffic, event-loop
fast-path tallies, sortition selections) funnels into one
:class:`MetricsRegistry` so that experiment results, benchmarks, and the
trace report CLI all read the same numbers.

Design constraints:

* **Cheap when hot.** ``inc``/``observe`` are dict operations on plain
  Python numbers — no locks, no label objects, no string formatting
  beyond what the caller already did. Instrumented call sites guard on
  ``obs is not None`` so a simulation without a bus pays one attribute
  load per site.
* **Deterministic snapshots.** :meth:`snapshot` sorts every key, and no
  wall-clock value ever enters the registry; two identically seeded runs
  produce byte-identical snapshots (tested).
* **Stdlib only.** The package must be importable from anywhere
  (including the report CLI on a machine without numpy/scipy).

Naming convention: dotted lowercase paths, ``<layer>.<what>[.<kind>]``,
e.g. ``gossip.sent.vote``, ``router.unknown_kind``, ``cache.hits``.
"""

from __future__ import annotations


class HistogramSummary:
    """Order-free summary of observed samples (count/sum/min/max).

    Bucketed histograms would force a bucket layout on every caller; the
    report CLI only needs magnitudes (e.g. egress batch-drain sizes), so
    a four-number summary keeps observation O(1) and snapshots exact.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float | int]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named counters, gauges, and histogram summaries."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, int | float] = {}
        self._gauges: dict[str, int | float] = {}
        self._histograms: dict[str, HistogramSummary] = {}

    # -- write paths (hot) ---------------------------------------------

    def inc(self, name: str, value: int | float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        counters = self._counters
        counters[name] = counters.get(name, 0) + value

    def set_gauge(self, name: str, value: int | float) -> None:
        """Set gauge ``name`` to the latest ``value``."""
        self._gauges[name] = value

    def set_counter(self, name: str, value: int | float) -> None:
        """Overwrite counter ``name`` (harvesters mirroring an external
        tally, e.g. ``VerificationCache.hits``, use this instead of
        double-counting with :meth:`inc`)."""
        self._counters[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram summary ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = HistogramSummary()
        histogram.observe(value)

    # -- read paths ----------------------------------------------------

    def counter(self, name: str) -> int | float:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> int | float | None:
        return self._gauges.get(name)

    def counters_with_prefix(self, prefix: str) -> dict[str, int | float]:
        """All counters whose name starts with ``prefix`` (sorted)."""
        return {name: value
                for name, value in sorted(self._counters.items())
                if name.startswith(prefix)}

    def snapshot(self) -> dict:
        """Plain-data view of every metric, with sorted keys.

        The result is JSON-serializable and deterministic for a given
        simulation seed; the harness embeds it in experiment results and
        the JSONL sink appends it as the trace's final record.
        """
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {name: histogram.as_dict()
                           for name, histogram
                           in sorted(self._histograms.items())},
        }
