"""Central catalogue of trace-event kinds and their required fields.

Every ``obs.emit`` call site in the tree must use a kind registered
here (a test greps the source for literal kinds and asserts it). The catalogue
serves two consumers:

* :class:`~repro.obs.bus.TraceBus` — when constructed with
  ``validate=True`` (or when the ``REPRO_OBS_VALIDATE`` environment
  variable is set), every emitted record is checked against its kind's
  spec and a typo'd kind or missing field raises immediately instead of
  producing an event no downstream aggregation will ever match;
* :mod:`repro.conformance` — the reference BA* state machine keys its
  legal-transition tables on exactly these kinds, so an unregistered
  kind is by definition invisible to conformance checking.

Validation is **off by default**: ad-hoc kinds are handy in unit tests
and downstream tooling, and the emit path is hot enough that production
runs should not pay a per-event schema check. The conformance and obs
test suites turn it on explicitly for full simulation runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


class EventSchemaError(ValueError):
    """An emitted record does not match its registered kind."""


@dataclass(frozen=True)
class EventKind:
    """Schema of one trace-event kind.

    ``required`` lists field names that must be present on every record
    of this kind (beyond the implicit ``t`` timestamp); ``optional``
    documents fields that may appear (validation does not reject unknown
    extras — forward compatibility — but the catalogue is the reference
    for what a well-formed record carries).
    """

    name: str
    emitted_by: str
    required: frozenset[str]
    optional: frozenset[str] = field(default_factory=frozenset)


def _kind(name: str, emitted_by: str, required: tuple[str, ...],
          optional: tuple[str, ...] = ()) -> EventKind:
    return EventKind(name=name, emitted_by=emitted_by,
                     required=frozenset(required),
                     optional=frozenset(optional))


#: kind name -> :class:`EventKind` spec. Mirrors the catalogue table in
#: docs/OBSERVABILITY.md; keep the two in sync.
EVENT_KINDS: dict[str, EventKind] = {k.name: k for k in [
    # -- node round lifecycle ------------------------------------------
    _kind("round_start", "node agent", ("node", "round")),
    _kind("block_proposed", "node agent",
          ("node", "round", "j", "weight")),
    _kind("proposal_resolved", "node agent",
          ("node", "round", "empty", "waited_s")),
    _kind("round_commit", "node agent",
          ("node", "round", "consensus", "empty", "block_hash",
           "payload_bytes", "binary_steps", "proposal_s", "ba_s",
           "final_s", "total_s")),
    _kind("final_certified", "pipelined final step",
          ("node", "round"), ("pipelined",)),
    _kind("consensus_halted", "node agent", ("node", "round")),
    # -- BA* step machinery --------------------------------------------
    _kind("vote_cast", "BA* committee vote",
          ("node", "round", "step", "j", "weight")),
    _kind("step_enter", "BA* CountVotes",
          ("node", "round", "step", "deadline_s")),
    # ``votes_counted`` is absent on interrupted exits (crash/retire
    # closing an open interval); ``interrupted`` marks those.
    _kind("step_exit", "BA* CountVotes / crash cleanup",
          ("node", "round", "step", "seconds", "timed_out"),
          ("votes_counted", "interrupted")),
    # -- fail-stop / recovery lifecycle --------------------------------
    _kind("node_crashed", "node agent (fail-stop, chaos)",
          ("node", "round")),
    _kind("node_restarted", "node agent (chaos rejoin)",
          ("node", "round")),
    _kind("catchup_adopted", "node agent (resync hook)",
          ("node", "round", "from_height", "to_height")),
    # -- aggregated population -----------------------------------------
    _kind("agent_retired", "aggregated population",
          ("node", "height")),
    _kind("population_boundary", "aggregated population",
          ("round", "winners", "fresh", "live")),
    # -- chaos / admission / sweep -------------------------------------
    _kind("fault_applied", "chaos fault injector",
          ("fault", "nodes", "window")),
    _kind("fault_cleared", "chaos fault injector",
          ("fault", "nodes", "window")),
    _kind("peer_quarantined", "admission layer",
          ("peer", "round", "scope"),
          ("node", "offense", "banned")),
    _kind("sweep.point_done", "sweep engine",
          ("index", "spec_kind", "ok", "attempts", "wall_time")),
]}


def register_event_kind(kind: EventKind) -> None:
    """Add (or replace) a kind at runtime — for downstream extensions."""
    EVENT_KINDS[kind.name] = kind


def validation_default() -> bool:
    """Resolve the default for ``TraceBus(validate=None)`` from the env."""
    return os.environ.get("REPRO_OBS_VALIDATE", "") not in ("", "0")


def validate_record(record: dict) -> None:
    """Raise :class:`EventSchemaError` if ``record`` is malformed.

    ``record`` is the flat event dict the bus is about to publish
    (``{"t": ..., "kind": ..., ...}``).
    """
    kind = record.get("kind")
    spec = EVENT_KINDS.get(kind)
    if spec is None:
        raise EventSchemaError(
            f"unregistered event kind {kind!r} "
            f"(register it in repro.obs.events.EVENT_KINDS)")
    missing = [name for name in spec.required if name not in record]
    if missing:
        raise EventSchemaError(
            f"event kind {kind!r} missing required field(s) "
            f"{sorted(missing)} (record: {record!r})")
