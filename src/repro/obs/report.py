"""Trace report CLI: turn a JSONL trace into the paper's evaluation views.

Usage::

    python -m repro.obs.report trace.jsonl

Prints, in order:

1. **Per-round segments** — the Figure-7-style breakdown of where each
   round's time went (block proposal / BA⋆ / final-step counting),
   averaged across the nodes that committed the round, plus how many
   nodes reached *final* vs *tentative* consensus.
2. **BA⋆ step timings** — per-step sample counts, how often the vote
   threshold was reached vs the ``lambda_step`` timeout fired, and the
   observed durations (the §10.5 timeout-validation view).
3. **Message traffic by kind** — per-kind gossip send/receive/relay
   counts and bytes (the §10.3 bandwidth-cost view).
4. **Runtime counters** — verification-cache hits/misses/negatives,
   router dispatches and unknown-kind drops, event-loop fast-path
   tallies, sortition selections, and gossip hygiene stats.

Everything here is stdlib-only so the report runs anywhere the trace
file can be copied to.
"""

from __future__ import annotations

import sys
from collections import defaultdict
from pathlib import Path

from repro.obs.sink import read_trace

#: Canonical display order for BA⋆ steps (numeric steps sort between).
_STEP_ORDER = {"reduction_one": -2, "reduction_two": -1, "final": 1000}


def _table(headers: list[str], rows: list[list[object]]) -> str:
    """Fixed-width ASCII table (stdlib clone of experiments.metrics)."""
    columns = [[str(header)] + [str(row[i]) for row in rows]
               for i, header in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines = [header_line, "-" * len(header_line)]
    for row in rows:
        lines.append("  ".join(str(cell).ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _step_sort_key(step: str) -> tuple[int, int]:
    if step in _STEP_ORDER:
        return (_STEP_ORDER[step], 0)
    try:
        return (0, int(step))
    except ValueError:
        return (999, 0)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def round_segments(events: list[dict]) -> list[dict]:
    """Aggregate ``round_commit`` events into per-round segment rows."""
    by_round: dict[int, list[dict]] = defaultdict(list)
    for event in events:
        if event["kind"] == "round_commit":
            by_round[event["round"]].append(event)
    rows = []
    for round_number in sorted(by_round):
        commits = by_round[round_number]
        rows.append({
            "round": round_number,
            "nodes": len(commits),
            "proposal_s": _mean([c["proposal_s"] for c in commits]),
            "ba_s": _mean([c["ba_s"] for c in commits]),
            "final_s": _mean([c["final_s"] for c in commits]),
            "total_s": _mean([c["total_s"] for c in commits]),
            "final_nodes": sum(1 for c in commits if c["consensus"] == "final"),
            "tentative_nodes": sum(1 for c in commits
                                   if c["consensus"] == "tentative"),
            "empty": any(c["empty"] for c in commits),
        })
    return rows


def step_timings(events: list[dict]) -> list[dict]:
    """Aggregate ``step_exit`` events into per-step timing rows."""
    by_step: dict[str, list[dict]] = defaultdict(list)
    for event in events:
        if event["kind"] == "step_exit":
            by_step[event["step"]].append(event)
    rows = []
    for step in sorted(by_step, key=_step_sort_key):
        exits = by_step[step]
        seconds = [e["seconds"] for e in exits]
        timeouts = sum(1 for e in exits if e["timed_out"])
        interrupted = sum(1 for e in exits if e.get("interrupted"))
        rows.append({
            "step": step,
            "samples": len(exits),
            "threshold_reached": len(exits) - timeouts - interrupted,
            "timeouts": timeouts,
            "interrupted": interrupted,
            "mean_s": _mean(seconds),
            "max_s": max(seconds) if seconds else 0.0,
        })
    return rows


def traffic_by_kind(counters: dict[str, int | float]) -> list[dict]:
    """Join the per-kind gossip counters into one row per message kind."""
    kinds: set[str] = set()
    for name in counters:
        for prefix in ("gossip.sent.", "gossip.recv.", "gossip.relayed."):
            if name.startswith(prefix):
                kinds.add(name[len(prefix):])
    rows = []
    for kind in sorted(kinds):
        rows.append({
            "kind": kind,
            "sent": counters.get(f"gossip.sent.{kind}", 0),
            "sent_bytes": counters.get(f"gossip.sent_bytes.{kind}", 0),
            "recv": counters.get(f"gossip.recv.{kind}", 0),
            "recv_bytes": counters.get(f"gossip.recv_bytes.{kind}", 0),
            "relayed": counters.get(f"gossip.relayed.{kind}", 0),
        })
    return rows


def trace_losses(snapshot: dict | None) -> tuple[int, int]:
    """(ring-buffer drops, sink drops) recorded in the trace snapshot."""
    if snapshot is None:
        return (0, 0)
    return (snapshot.get("dropped_events", 0),
            int(snapshot.get("gauges", {}).get("obs.sink_dropped", 0)))


def render_report(events: list[dict], snapshot: dict | None) -> str:
    """The full report as one printable string."""
    sections: list[str] = []

    ring_dropped, sink_dropped = trace_losses(snapshot)
    if ring_dropped or sink_dropped:
        sections.append(
            "!! INCOMPLETE TRACE: "
            f"{ring_dropped} events dropped by the in-memory ring buffer, "
            f"{sink_dropped} dropped by bounded sinks — every aggregate "
            "below undercounts; re-record with higher limits !!\n")

    segment_rows = round_segments(events)
    sections.append("== Per-round segments (seconds, mean across nodes) ==")
    if segment_rows:
        sections.append(_table(
            ["round", "nodes", "proposal", "ba_star", "final_step", "total",
             "final/tentative", "empty"],
            [[r["round"], r["nodes"], f"{r['proposal_s']:.3f}",
              f"{r['ba_s']:.3f}", f"{r['final_s']:.3f}",
              f"{r['total_s']:.3f}",
              f"{r['final_nodes']}/{r['tentative_nodes']}",
              "yes" if r["empty"] else "no"]
             for r in segment_rows]))
    else:
        sections.append("(no round_commit events in trace)")

    step_rows = step_timings(events)
    sections.append("\n== BA* step timings ==")
    if step_rows:
        sections.append(_table(
            ["step", "samples", "threshold", "timeout", "interrupted",
             "mean_s", "max_s"],
            [[r["step"], r["samples"], r["threshold_reached"], r["timeouts"],
              r["interrupted"], f"{r['mean_s']:.3f}", f"{r['max_s']:.3f}"]
             for r in step_rows]))
    else:
        sections.append("(no step_exit events in trace)")

    counters = (snapshot or {}).get("counters", {})
    traffic_rows = traffic_by_kind(counters)
    sections.append("\n== Message traffic by kind ==")
    if traffic_rows:
        sections.append(_table(
            ["kind", "sent", "sent_bytes", "recv", "recv_bytes", "relayed"],
            [[r["kind"], r["sent"], r["sent_bytes"], r["recv"],
              r["recv_bytes"], r["relayed"]] for r in traffic_rows]))
    else:
        sections.append("(no gossip counters in trace snapshot)")

    sections.append("\n== Runtime counters ==")
    if snapshot is None:
        sections.append("(trace has no snapshot record)")
    else:
        gauges = snapshot.get("gauges", {})
        histograms = snapshot.get("histograms", {})
        rows = []
        hits = counters.get("cache.hits", 0)
        misses = counters.get("cache.misses", 0)
        total = hits + misses
        rows.append(["verification cache",
                     f"{hits} hits / {misses} misses "
                     f"({counters.get('cache.negative_hits', 0)} negative)",
                     f"hit rate {hits / total:.3f}" if total else "unused"])
        dispatched = sum(value for name, value in counters.items()
                         if name.startswith("router.dispatch."))
        rows.append(["router", f"{dispatched} dispatched",
                     f"{counters.get('router.unknown_kind', 0)} "
                     f"unknown-kind drops"])
        rows.append(["event loop",
                     f"{gauges.get('simloop.events_processed', 0)} events",
                     f"{gauges.get('simloop.immediates_processed', 0)} "
                     f"immediate / "
                     f"{gauges.get('simloop.batch_deliveries', 0)} batched "
                     f"({gauges.get('simloop.batch_walks', 0)} walks)"])
        rows.append(["sortition",
                     f"{counters.get('sortition.proves', 0)} proves / "
                     f"{counters.get('sortition.verifies', 0)} verifies",
                     f"{counters.get('sortition.prove_selected', 0)} selected "
                     f"({counters.get('sortition.subusers_selected', 0)} "
                     f"sub-users)"])
        rows.append(["gossip hygiene",
                     f"{counters.get('gossip.dup_dropped', 0)} dup-dropped / "
                     f"{counters.get('gossip.filtered', 0)} filtered",
                     f"{counters.get('gossip.pruned_ids', 0)} seen-ids "
                     f"pruned"])
        batch = histograms.get("gossip.egress_batch")
        if batch and batch.get("count"):
            rows.append(["egress batch drain",
                         f"{batch['count']} drains",
                         f"mean {batch['mean']:.1f} msgs "
                         f"(max {batch['max']:.0f})"])
        if "admission.admitted" in counters:
            rejected = sum(value for name, value in counters.items()
                           if name.startswith("admission.rejected."))
            rows.append(["admission",
                         f"{counters.get('admission.admitted', 0)} admitted "
                         f"/ {rejected} rejected",
                         f"{counters.get('admission.quarantines', 0)} "
                         f"quarantines "
                         f"({gauges.get('admission.quarantined_peers', 0)} "
                         f"peers held at end)"])
            rows.append(["ingress buffers",
                         f"vote high-water "
                         f"{gauges.get('admission.buffer_high_water', 0)} / "
                         f"egress high-water "
                         f"{gauges.get('admission.egress_high_water', 0)}",
                         f"{counters.get('admission.buffer_evicted', 0)} "
                         f"evicted / "
                         f"{counters.get('admission.egress_dropped', 0)} "
                         f"lane-dropped"])
        sections.append(_table(["subsystem", "volume", "detail"], rows))

    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1 or args[0] in ("-h", "--help"):
        print("usage: python -m repro.obs.report <trace.jsonl>")
        return 2
    path = Path(args[0])
    if not path.exists():
        print(f"error: trace file {path} does not exist")
        return 2
    events, snapshot = read_trace(path)
    print(f"trace: {path} ({len(events)} events, "
          f"snapshot {'present' if snapshot is not None else 'missing'})")
    print(render_report(events, snapshot))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
