"""Unified observability layer: trace bus, metrics registry, JSONL export.

The paper's whole evaluation (§10, Figures 5-8) is a story about where
time goes — proposal vs BA⋆ vs final-step segments, per-step message
counts, committee sizes. ``repro.obs`` makes those quantities first
class: one :class:`TraceBus` per simulation collects structured events
(simulated timestamp, node, round, BA⋆ step, kind-specific fields) and
one :class:`MetricsRegistry` absorbs every ad-hoc counter, with a JSONL
sink plus ``python -m repro.obs.report`` to turn a trace into the
Figure-7-style tables.

Zero-dependency by design (stdlib only); the simulation layers it
instruments all guard on ``obs is not None``, so a simulation without a
bus pays one attribute check per instrumented site.
"""

from repro.obs.bus import TraceBus
from repro.obs.events import (
    EVENT_KINDS,
    EventKind,
    EventSchemaError,
    register_event_kind,
    validate_record,
)
from repro.obs.metrics import HistogramSummary, MetricsRegistry
from repro.obs.sink import JsonlTraceSink, read_trace

__all__ = [
    "TraceBus",
    "MetricsRegistry",
    "HistogramSummary",
    "JsonlTraceSink",
    "read_trace",
    "EVENT_KINDS",
    "EventKind",
    "EventSchemaError",
    "register_event_kind",
    "validate_record",
]
