"""Substrate API: the seam between protocol code and what carries it.

The node agent, BA*, sortition, admission, damping, and obs layers never
cared whether time is virtual or wall-clock, or whether messages cross a
heap or a socket — they only ever used two object shapes:

* a **clock** exposing the :class:`repro.sim.loop.Environment` scheduling
  API (``now``, ``process``, ``timeout``, ``event``, ``signal``,
  ``any_of``, ``schedule``, ``schedule_now``), and
* a **transport** exposing the
  :class:`repro.network.gossip.NetworkInterface` surface (``broadcast``
  plus the ``relay_policy``/``ingress``/``disconnected`` attachment
  points the node and admission gate assign into).

This module names that implicit seam as explicit
:class:`typing.Protocol` types — :class:`Clock`, :class:`Transport`, and
the :class:`Substrate` pairing that a harness builds per node — so a
second execution substrate is a *swap*, not a fork:

========== ============================== ===========================
substrate  clock                          transport
========== ============================== ===========================
``sim``    ``repro.sim.loop.Environment`` ``repro.network.gossip``
           (virtual, deterministic)       ``.NetworkInterface``
``live``   ``repro.live.clock.LiveClock`` ``repro.live.transport``
           (wall clock, asyncio)          ``.LiveTransport``
========== ============================== ===========================

Both are checked against these protocols in ``tests/test_substrate.py``.
"""

from repro.substrate.api import Clock, Substrate, Transport
from repro.substrate.sim import SimSubstrate

__all__ = ["Clock", "Substrate", "Transport", "SimSubstrate"]
