"""Clock / Transport / Substrate protocols.

These are *structural* (``typing.Protocol``) rather than nominal base
classes on purpose: ``repro.sim.loop.Environment`` and
``repro.network.gossip.NetworkInterface`` predate this module and
already satisfy them unchanged, and the live implementations in
:mod:`repro.live` satisfy them by construction. ``runtime_checkable``
lets tests assert conformance with plain ``isinstance`` checks.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from repro.network.message import Envelope


@runtime_checkable
class Clock(Protocol):
    """The scheduling surface protocol code runs against.

    In the sim substrate this is the discrete-event
    :class:`~repro.sim.loop.Environment` (virtual time, deterministic
    ``(time, seq)`` ordering); in the live substrate it is
    :class:`~repro.live.clock.LiveClock`, which fires the same timer
    queue paced against ``time.time()`` inside an asyncio loop. Node
    code cannot tell the difference — that is the point.
    """

    now: float

    def schedule(self, delay: float, callback: Callable[[], None]) -> Any: ...

    def schedule_now(self, callback: Callable[[], None]) -> Any: ...

    def timeout(self, delay: float, value: Any = None) -> Any: ...

    def event(self) -> Any: ...

    def signal(self) -> Any: ...

    def any_of(self, children: Iterable[Any]) -> Any: ...

    def process(self, generator: Any, name: str = "") -> Any: ...


@runtime_checkable
class Transport(Protocol):
    """The per-node message-passing surface.

    ``broadcast`` pushes an envelope toward every peer; the node wires
    itself in by *assigning* ``relay_policy`` (synchronous dispatch of
    arriving envelopes, return value = relay decision) and the
    admission gate by assigning ``ingress`` (pre-dedup accept/reject).
    Gossip metrics (``bytes_sent``/``messages_sent``) and liveness
    (``disconnected``) round out the surface the runtime layers read.
    """

    index: int
    disconnected: bool
    bytes_sent: int
    messages_sent: int
    # Assignment points (declared as attributes so implementations must
    # expose them writable): the node's envelope handler and the
    # admission gate's pre-filter.
    relay_policy: Callable[[Envelope], bool]
    ingress: Callable[[Envelope], bool] | None

    def broadcast(self, envelope: Envelope) -> None: ...


@runtime_checkable
class Substrate(Protocol):
    """One node's execution context: a clock plus its transport.

    A harness (``Simulation`` or ``LiveCluster``) builds one per node
    and hands the pair to the substrate-agnostic stack
    (``Node(env=..., interface=...)`` → admission → damping → obs).
    ``name`` identifies which world the numbers came from — wall-clock
    latencies from ``"live"`` and virtual latencies from ``"sim"`` must
    never be averaged together.
    """

    name: str
    clock: Clock
    transport: Transport
