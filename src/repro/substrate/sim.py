"""Sim substrate adapter: the default, deterministic world.

:class:`SimSubstrate` is a thin named pairing of the discrete-event
``Environment`` with one node's ``NetworkInterface``. It adds no
behavior — simulation runs remain byte-identical — it only makes the
substrate explicit so harness code and tests can treat sim and live
uniformly through :class:`repro.substrate.api.Substrate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.gossip import NetworkInterface
from repro.sim.loop import Environment


@dataclass(frozen=True)
class SimSubstrate:
    """Virtual-time substrate backed by the discrete-event kernel."""

    clock: Environment
    transport: NetworkInterface
    name: str = field(default="sim")
