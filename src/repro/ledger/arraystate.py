"""Array-backed account state for large populations.

The paper's evaluation reaches 500,000 users; holding every user's
balance in a per-chain python dict (and copying that dict into a fresh
snapshot at every round boundary, on every node) is what made large
populations unaffordable. :class:`ArrayState` keeps balances in one
numpy ``int64`` array keyed by a *stable account index* and exposes the
same API as :class:`repro.ledger.account.AccountState`, including a
dict-like :class:`ArrayWeights` view so every existing caller of
``state.weights()`` keeps working unchanged.

Three properties matter for the aggregated-population refactor:

* **Stable indices.** Public keys map to array slots through a shared,
  append-only :class:`AccountIndex`. All chain replicas of one
  simulation share the registry, so the stake-pool sortition pass in
  :mod:`repro.sortition.pool` can evaluate "one array" instead of one
  dict per chain. Append-only means forks can never disagree about a
  slot: a key present on any chain owns its slot everywhere.
* **O(accounts) copies.** ``copy()`` (used by transaction dry-runs and
  agent materialization) is one ``numpy`` array copy plus a sparse
  nonce-dict copy — no per-key dict churn.
* **Shared immutable snapshots.** ``weights()`` returns a *cached
  frozen* :class:`ArrayWeights`; the cache is invalidated on mutation,
  so rounds that commit no balance change share one snapshot object
  across the whole weight history (and across every consumer of
  ``chain.weights_at``).

Equivalence with ``AccountState`` is exact: same accepted/rejected
transactions, same balances/nonces, and ``weights()`` exposes exactly
the keys with positive balance (zero-balance accounts vanish from the
view just as ``AccountState`` deletes their dict entries).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.common.errors import InvalidTransaction
from repro.ledger.transaction import Transaction


class AccountIndex:
    """Shared append-only mapping public key -> stable array slot.

    One instance per simulation; every :class:`ArrayState` of every
    chain replica resolves keys through it. Growing the registry never
    invalidates existing states — their arrays simply read as zero for
    slots allocated after their last write.
    """

    __slots__ = ("_slots", "_keys")

    def __init__(self, publics: Iterable[bytes] = ()) -> None:
        self._slots: dict[bytes, int] = {}
        self._keys: list[bytes] = []
        for public in publics:
            self.slot_of(public)

    def __len__(self) -> int:
        return len(self._keys)

    def slot_of(self, public: bytes) -> int:
        """Slot for ``public``, allocating one if unseen."""
        slot = self._slots.get(public)
        if slot is None:
            slot = len(self._keys)
            self._slots[public] = slot
            self._keys.append(public)
        return slot

    def get(self, public: bytes) -> int | None:
        """Slot for ``public`` or ``None`` (never allocates)."""
        return self._slots.get(public)

    def key_of(self, slot: int) -> bytes:
        return self._keys[slot]

    @property
    def keys(self) -> list[bytes]:
        """All registered keys, slot order (live list — do not mutate)."""
        return self._keys


class ArrayWeights(Mapping[bytes, int]):
    """Frozen dict-view over one balance-array snapshot.

    Implements the full ``Mapping`` protocol over exactly the accounts
    with positive balance, without materializing a dict: lookups are one
    slot resolution plus one array read. Instances are immutable (they
    own a private array copy) and are shared freely across weight
    history entries, BA contexts, and the stake pool.
    """

    __slots__ = ("_index", "_balances", "total", "_nonzero")

    #: Marks the mapping as already-immutable for
    #: :class:`repro.baplus.context.BAContext`'s no-copy fast path.
    frozen = True

    def __init__(self, index: AccountIndex, balances: np.ndarray) -> None:
        self._index = index
        self._balances = balances
        self._balances.setflags(write=False)
        #: Total currency ``W`` — the sortition denominator, precomputed
        #: so contexts over 10k+ accounts skip the O(n) python sum.
        self.total = int(balances.sum())
        self._nonzero = int(np.count_nonzero(balances))

    def __getitem__(self, public: bytes) -> int:
        slot = self._index.get(public)
        if slot is None or slot >= len(self._balances):
            raise KeyError(public)
        balance = int(self._balances[slot])
        if balance == 0:
            raise KeyError(public)
        return balance

    def get(self, public: bytes, default: int = 0) -> int:
        slot = self._index.get(public)
        if slot is None or slot >= len(self._balances):
            return default
        balance = int(self._balances[slot])
        return balance if balance else default

    def __iter__(self) -> Iterator[bytes]:
        balances = self._balances
        key_of = self._index.key_of
        for slot in np.flatnonzero(balances):
            yield key_of(int(slot))

    def __len__(self) -> int:
        return self._nonzero

    def __contains__(self, public: object) -> bool:
        if not isinstance(public, bytes):
            return False
        slot = self._index.get(public)
        return (slot is not None and slot < len(self._balances)
                and bool(self._balances[slot]))

    @property
    def array(self) -> np.ndarray:
        """The raw (read-only) balance array, for the vectorized pool."""
        return self._balances

    @property
    def index(self) -> AccountIndex:
        return self._index


class ArrayState:
    """Drop-in :class:`AccountState` replacement backed by one array."""

    __slots__ = ("_index", "_balances", "_nonces", "_weights_cache")

    def __init__(self, balances: Mapping[bytes, int] | None = None,
                 index: AccountIndex | None = None) -> None:
        self._index = index if index is not None else AccountIndex()
        self._balances = np.zeros(max(len(self._index), 8), dtype=np.int64)
        self._nonces: dict[bytes, int] = {}
        self._weights_cache: ArrayWeights | None = None
        for public, balance in (balances or {}).items():
            if balance < 0:
                raise ValueError(
                    f"negative initial balance for {public.hex()}")
            self._set(public, balance)

    def _set(self, public: bytes, balance: int) -> None:
        slot = self._index.slot_of(public)
        if slot >= len(self._balances):
            grown = np.zeros(max(slot + 1, 2 * len(self._balances)),
                             dtype=np.int64)
            grown[:len(self._balances)] = self._balances
            self._balances = grown
        self._balances[slot] = balance

    def copy(self) -> "ArrayState":
        clone = ArrayState.__new__(ArrayState)
        clone._index = self._index
        clone._balances = self._balances.copy()
        clone._nonces = dict(self._nonces)
        clone._weights_cache = None
        return clone

    def balance(self, public: bytes) -> int:
        slot = self._index.get(public)
        if slot is None or slot >= len(self._balances):
            return 0
        return int(self._balances[slot])

    def next_nonce(self, public: bytes) -> int:
        return self._nonces.get(public, 0)

    @property
    def total_weight(self) -> int:
        return int(self._balances.sum())

    def weights(self) -> ArrayWeights:
        """Shared immutable snapshot of the weight table.

        Cached until the next mutation: consecutive calls (and rounds
        that commit no balance change) return the *same* object.
        """
        if self._weights_cache is None:
            self._weights_cache = ArrayWeights(self._index,
                                               self._balances.copy())
        return self._weights_cache

    def check(self, tx: Transaction) -> None:
        tx.check_shape()
        if tx.nonce != self.next_nonce(tx.sender):
            raise InvalidTransaction(
                f"nonce {tx.nonce} != expected {self.next_nonce(tx.sender)}"
            )
        if self.balance(tx.sender) < tx.amount:
            raise InvalidTransaction(
                f"overspend: balance {self.balance(tx.sender)} < {tx.amount}"
            )

    def apply(self, tx: Transaction) -> None:
        self.check(tx)
        self._weights_cache = None
        self._set(tx.sender, self.balance(tx.sender) - tx.amount)
        self._set(tx.recipient, self.balance(tx.recipient) + tx.amount)
        self._nonces[tx.sender] = tx.nonce + 1

    def apply_all(self, transactions: Iterable[Transaction]) -> None:
        for tx in transactions:
            self.apply(tx)

    def would_accept(self, transactions: Iterable[Transaction]) -> bool:
        trial = self.copy()
        try:
            trial.apply_all(transactions)
        except InvalidTransaction:
            return False
        return True
