"""Chain persistence: export/import a validated history.

Serializes a chain's blocks and certificates with the wire format, so a
node can persist its replica and a fresh process (or a brand-new user)
can reload it with *full revalidation* — loading is exactly the
bootstrap path of section 8.3, so a corrupted or tampered file is
rejected, never trusted.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from repro.baplus.certificate import Certificate
from repro.common.encoding import decode, encode
from repro.common.errors import LedgerError
from repro.common.params import ProtocolParams
from repro.crypto.backend import CryptoBackend
from repro.ledger.blockchain import Blockchain

#: Format marker + version for forward compatibility.
_MAGIC = "repro-chain-v1"


def chain_to_bytes(chain: Blockchain) -> bytes:
    """Serialize blocks (rounds 1..n) and their certificates."""
    from repro.network.wire import encode_block, encode_certificate

    blocks = []
    certificates = []
    for block in chain.blocks[1:]:
        blocks.append(encode_block(block))
        certificate = chain.certificate_at(block.round_number)
        certificates.append(
            encode_certificate(certificate)
            if isinstance(certificate, Certificate) else None)
    return encode([_MAGIC, blocks, certificates])


def chain_from_bytes(data: bytes, *,
                     initial_balances: Mapping[bytes, int],
                     genesis_seed: bytes, params: ProtocolParams,
                     backend: CryptoBackend) -> Blockchain:
    """Rebuild and revalidate a chain from :func:`chain_to_bytes` output.

    Raises:
        LedgerError / InvalidCertificate: if the payload is malformed or
            fails the section 8.3 bootstrap validation.
    """
    # Imported lazily: persistence sits in the ledger package but the
    # bootstrap validator lives above it (node.catchup), and the wire
    # codec above that — importing either at module scope would cycle.
    from repro.network.wire import decode_block, decode_certificate
    from repro.node.catchup import replay_chain

    try:
        magic, raw_blocks, raw_certificates = decode(data)
    except (ValueError, TypeError) as exc:
        raise LedgerError(f"not a chain file: {exc}") from exc
    if magic != _MAGIC:
        raise LedgerError(f"unsupported chain format {magic!r}")
    if len(raw_blocks) != len(raw_certificates):
        raise LedgerError("blocks/certificates length mismatch")
    blocks = [decode_block(raw) for raw in raw_blocks]
    certificates = {
        block.round_number: decode_certificate(raw)
        for block, raw in zip(blocks, raw_certificates)
        if raw is not None
    }
    return replay_chain(
        blocks, certificates, initial_balances=initial_balances,
        genesis_seed=genesis_seed, params=params, backend=backend,
    )


def save_chain(chain: Blockchain, path: str | Path) -> int:
    """Write the chain to ``path``; returns bytes written."""
    payload = chain_to_bytes(chain)
    Path(path).write_bytes(payload)
    return len(payload)


def load_chain(path: str | Path, *,
               initial_balances: Mapping[bytes, int], genesis_seed: bytes,
               params: ProtocolParams,
               backend: CryptoBackend) -> Blockchain:
    """Read and revalidate a chain previously written by :func:`save_chain`."""
    return chain_from_bytes(
        Path(path).read_bytes(), initial_balances=initial_balances,
        genesis_seed=genesis_seed, params=params, backend=backend,
    )
