"""Blocks and block validation (section 8.1).

A block carries a list of transactions plus the metadata BA* needs: the
round number, the proposer's VRF-based seed and proof, the hash of the
previous block, and a proposal timestamp. The *empty block* for a round is
a deterministic constant every honest node can construct locally — BA*
falls back to it whenever proposals are missing or invalid (Algorithm 8's
``Empty(round, H(ctx.last_block))``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING

from repro.common.encoding import encode
from repro.common.errors import InvalidBlock
from repro.crypto.hashing import H
from repro.ledger.transaction import Transaction

if TYPE_CHECKING:
    from repro.crypto.backend import CryptoBackend
    from repro.ledger.account import AccountState

#: Serialized overhead per block besides transactions (metadata, proofs).
BLOCK_HEADER_OVERHEAD = 360


@dataclass(frozen=True)
class Block:
    """One entry of the ledger."""

    round_number: int
    prev_hash: bytes
    timestamp: float
    # Seed material (None for empty blocks — nodes use the H() fallback).
    seed: bytes | None = None
    seed_proof: bytes | None = None
    # Proposer identity and sortition credentials (None for empty blocks).
    proposer: bytes | None = None
    proposer_vrf_hash: bytes | None = None
    proposer_vrf_proof: bytes | None = None
    proposer_priority: bytes | None = None
    transactions: tuple[Transaction, ...] = field(default_factory=tuple)

    @property
    def is_empty(self) -> bool:
        """Empty blocks carry no proposer and no transactions."""
        return self.proposer is None

    def header_payload(self) -> bytes:
        """Canonical bytes identifying this block."""
        if self.is_empty:
            # The deterministic Empty(round, prev_hash) constant: must not
            # depend on timestamps or any proposer-specific data.
            return encode(["empty", self.round_number, self.prev_hash])
        return encode([
            "block",
            self.round_number,
            self.prev_hash,
            self.timestamp,
            self.seed,
            self.seed_proof,
            self.proposer,
            self.proposer_vrf_hash,
            self.proposer_vrf_proof,
            [tx.txid for tx in self.transactions],
        ])

    @cached_property
    def block_hash(self) -> bytes:
        return H(self.header_payload())

    @cached_property
    def size(self) -> int:
        """Approximate wire size in bytes."""
        return BLOCK_HEADER_OVERHEAD + sum(tx.size for tx in self.transactions)

    @property
    def payload_size(self) -> int:
        """Bytes of transaction data committed by this block."""
        return sum(tx.size for tx in self.transactions)


def empty_block(round_number: int, prev_hash: bytes) -> Block:
    """``Empty(round, prev_hash)`` — the canonical fallback block."""
    return Block(round_number=round_number, prev_hash=prev_hash,
                 timestamp=0.0)


def empty_block_hash(round_number: int, prev_hash: bytes) -> bytes:
    """Hash of the canonical empty block, computable without building it."""
    return empty_block(round_number, prev_hash).block_hash


def validate_block(block: Block, *, backend: "CryptoBackend",
                   state: "AccountState", prev_hash: bytes,
                   round_number: int, prev_timestamp: float,
                   now: float, max_clock_skew: float = 3600.0,
                   check_signatures: bool = True) -> None:
    """Full block validation per section 8.1.

    Checks: transactions valid against ``state``; previous-block hash;
    round number; timestamp newer than the previous block's and
    approximately current. Seed validity is checked separately by the node
    (it needs the selection seed). On any failure raises
    :class:`InvalidBlock` — the caller then substitutes the empty block.
    """
    if block.is_empty:
        if block.block_hash != empty_block_hash(round_number, prev_hash):
            raise InvalidBlock("empty block does not match canonical form")
        return
    if block.prev_hash != prev_hash:
        raise InvalidBlock("previous-block hash mismatch")
    if block.round_number != round_number:
        raise InvalidBlock(
            f"round {block.round_number} != expected {round_number}"
        )
    if block.timestamp <= prev_timestamp:
        raise InvalidBlock("timestamp not greater than previous block's")
    if abs(block.timestamp - now) > max_clock_skew:
        raise InvalidBlock("timestamp not approximately current")
    if block.seed is None or block.seed_proof is None:
        raise InvalidBlock("non-empty block must carry a seed and proof")
    if check_signatures:
        for tx in block.transactions:
            tx.verify_signature(backend)
    if not state.would_accept(block.transactions):
        raise InvalidBlock("transaction list does not apply cleanly")
