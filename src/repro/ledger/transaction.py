"""Signed payment transactions.

A transaction transfers currency between two public keys (section 4). Each
sender orders its transactions with a per-sender nonce, which gives replay
protection and a deterministic validity rule. ``note`` carries arbitrary
payload bytes; experiments use it to pad transactions to realistic sizes so
that block-size sweeps (Figure 7) move real bytes through the gossip layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.common.encoding import encode
from repro.common.errors import InvalidTransaction
from repro.crypto.backend import CryptoBackend
from repro.crypto.hashing import H


@dataclass(frozen=True)
class Transaction:
    """A payment of ``amount`` from ``sender`` to ``recipient``."""

    sender: bytes
    recipient: bytes
    amount: int
    nonce: int
    note: bytes = b""
    signature: bytes = field(default=b"", compare=False)

    def signing_payload(self) -> bytes:
        """Canonical bytes covered by the signature."""
        return encode([
            "tx", self.sender, self.recipient, self.amount, self.nonce,
            self.note,
        ])

    @cached_property
    def txid(self) -> bytes:
        """Hash identifying this transaction (includes the signature)."""
        return H(self.signing_payload(), self.signature)

    @cached_property
    def size(self) -> int:
        """Serialized size in bytes (drives bandwidth/block accounting)."""
        return len(self.signing_payload()) + len(self.signature)

    def check_shape(self) -> None:
        """Structural validation independent of ledger state."""
        if self.amount <= 0:
            raise InvalidTransaction(f"amount must be positive: {self.amount}")
        if self.nonce < 0:
            raise InvalidTransaction(f"nonce must be >= 0: {self.nonce}")
        if self.sender == self.recipient:
            raise InvalidTransaction("self-payments are not allowed")
        if not self.sender or not self.recipient:
            raise InvalidTransaction("sender and recipient must be non-empty")

    def verify_signature(self, backend: CryptoBackend) -> None:
        """Raise :class:`InvalidTransaction` unless correctly signed."""
        if not backend.is_valid_signature(
                self.sender, self.signing_payload(), self.signature):
            raise InvalidTransaction("bad transaction signature")


def make_transaction(backend: CryptoBackend, secret: bytes, sender: bytes,
                     recipient: bytes, amount: int, nonce: int,
                     note: bytes = b"") -> Transaction:
    """Build and sign a transaction in one step."""
    unsigned = Transaction(sender=sender, recipient=recipient, amount=amount,
                           nonce=nonce, note=note)
    unsigned.check_shape()
    signature = backend.sign(secret, unsigned.signing_payload())
    return Transaction(sender=sender, recipient=recipient, amount=amount,
                       nonce=nonce, note=note, signature=signature)
