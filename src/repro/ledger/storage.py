"""Sharded block/certificate storage (section 8.3).

"For N shards, users store blocks/certificates whose round number equals
their public key modulo N." This module implements that assignment and the
storage-cost accounting used by the section 10.3 cost experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ledger.block import Block

#: Certificate size reported by the paper (section 10.3), bytes. Used when
#: an experiment runs with abstract certificates; real certificates report
#: their own measured size.
PAPER_CERTIFICATE_BYTES = 300_000


def shard_of_key(public: bytes, num_shards: int) -> int:
    """Shard index for a public key (key interpreted as an integer)."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return int.from_bytes(public, "big") % num_shards


def stores_round(public: bytes, round_number: int, num_shards: int) -> bool:
    """Whether this user stores the block/certificate of ``round_number``."""
    return round_number % num_shards == shard_of_key(public, num_shards)


@dataclass
class StorageAccount:
    """Per-user storage accounting."""

    blocks_stored: int = 0
    block_bytes: int = 0
    certificate_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.block_bytes + self.certificate_bytes


class ShardedStore:
    """Tracks which user stores which rounds and at what byte cost."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self._accounts: dict[bytes, StorageAccount] = {}

    def account(self, public: bytes) -> StorageAccount:
        return self._accounts.setdefault(public, StorageAccount())

    def record_block(self, public: bytes, block: Block,
                     certificate_bytes: int = PAPER_CERTIFICATE_BYTES) -> bool:
        """Charge this user for the round if it falls in their shard.

        Returns True when the user stores the block.
        """
        if not stores_round(public, block.round_number, self.num_shards):
            return False
        account = self.account(public)
        account.blocks_stored += 1
        account.block_bytes += block.size
        account.certificate_bytes += certificate_bytes
        return True

    def average_bytes_per_round(self, publics: list[bytes],
                                rounds: int) -> float:
        """Mean per-user storage per appended round, across ``publics``."""
        if not publics or rounds == 0:
            return 0.0
        total = sum(self.account(pk).total_bytes for pk in publics)
        return total / (len(publics) * rounds)
