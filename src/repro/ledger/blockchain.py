"""The blockchain: an append-only chain of blocks plus derived state.

Each node holds one :class:`Blockchain` per chain tip it follows. The
chain owns three synchronized views:

* the block list (round ``0`` is the genesis block),
* the account state after applying every block's transactions,
* the seed chain (section 5.2) driving sortition.

Fork handling: during recovery (section 8.2) a node may need to adopt a
different chain; :meth:`Blockchain.fork_from` rebuilds state for an
alternative block sequence sharing the same genesis.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.common.errors import LedgerError
from repro.ledger.account import AccountState
from repro.ledger.block import Block
from repro.sortition.seed import SeedChain, fallback_seed

#: Sentinel previous-hash of the genesis block.
GENESIS_PREV_HASH = b"\x00" * 32


def make_genesis(genesis_seed: bytes) -> Block:
    """The canonical round-0 block (identical for all participants)."""
    return Block(round_number=0, prev_hash=GENESIS_PREV_HASH, timestamp=0.0)


class Blockchain:
    """Blocks, balances, and seeds for one chain."""

    def __init__(self, initial_balances: Mapping[bytes, int],
                 genesis_seed: bytes, seed_refresh_interval: int,
                 state_factory: Callable[[Mapping[bytes, int]],
                                         AccountState] = AccountState) -> None:
        if not initial_balances:
            raise LedgerError("initial balances must be non-empty")
        self._initial_balances = dict(initial_balances)
        self._genesis_seed = genesis_seed
        #: Builds the state representation: :class:`AccountState` (dict)
        #: by default, or an aggregated-population
        #: :class:`repro.ledger.arraystate.ArrayState` bound to a shared
        #: account index. Both expose the same API; replicas and forks
        #: inherit the factory.
        self._state_factory = state_factory
        self._blocks: list[Block] = [make_genesis(genesis_seed)]
        self._certificates: dict[int, object] = {}
        # Final-step certificates (section 8.3): proof that a round's
        # block was designated final — one suffices to establish safety
        # of the whole prefix.
        self._final_certificates: dict[int, object] = {}
        self._state = state_factory(initial_balances)
        self._seeds = SeedChain(genesis_seed, seed_refresh_interval)
        # Per-round weight snapshots (index == round number), supporting
        # the section 5.3 weight look-back. Entries are the *shared*
        # frozen mappings state.weights() caches — rounds without
        # balance changes alias one snapshot object.
        self._weight_history: list[Mapping[bytes, int]] = [
            self._state.weights()]

    # --- Read API ---------------------------------------------------------

    @property
    def blocks(self) -> tuple[Block, ...]:
        return tuple(self._blocks)

    @property
    def initial_balances(self) -> dict[bytes, int]:
        """Genesis balances (copy) — what a bootstrapping user starts from."""
        return dict(self._initial_balances)

    @property
    def genesis_seed(self) -> bytes:
        return self._genesis_seed

    @property
    def height(self) -> int:
        """Number of agreed rounds (genesis not counted)."""
        return len(self._blocks) - 1

    @property
    def next_round(self) -> int:
        return len(self._blocks)

    @property
    def last_block(self) -> Block:
        return self._blocks[-1]

    @property
    def tip_hash(self) -> bytes:
        return self.last_block.block_hash

    @property
    def state(self) -> AccountState:
        return self._state

    def block_at(self, round_number: int) -> Block:
        try:
            return self._blocks[round_number]
        except IndexError:
            raise LedgerError(f"no block for round {round_number}") from None

    def certificate_at(self, round_number: int) -> object | None:
        return self._certificates.get(round_number)

    def final_certificate_at(self, round_number: int) -> object | None:
        return self._final_certificates.get(round_number)

    def set_final_certificate(self, round_number: int,
                              certificate: object) -> None:
        """Record a final-step certificate for an already-agreed round."""
        if round_number > self.height:
            raise LedgerError(
                f"no block at round {round_number} to certify")
        self._final_certificates[round_number] = certificate

    def latest_final_round(self) -> int | None:
        """Most recent round holding a final certificate (or None)."""
        if not self._final_certificates:
            return None
        return max(self._final_certificates)

    def selection_seed(self, round_number: int) -> bytes:
        """Seed for sortition at ``round_number`` (refresh-interval rule)."""
        return self._seeds.selection_seed(round_number)

    def seed_of_round(self, round_number: int) -> bytes:
        return self._seeds.seed_of_round(round_number)

    def weights_at(self, round_number: int) -> Mapping[bytes, int]:
        """Weight table as of the end of ``round_number`` (0 == genesis).

        Backs the section 5.3 look-back: sortition may be evaluated
        against an older snapshot so an adversary acquiring stake cannot
        immediately influence committee selection. The returned mapping
        is the *shared immutable* snapshot itself (no per-caller copy);
        every consumer — contexts, recovery, catch-up, the stake pool —
        reads the same object.
        """
        try:
            return self._weight_history[round_number]
        except IndexError:
            raise LedgerError(
                f"no weight snapshot for round {round_number}") from None

    def last_nonempty_timestamp(self) -> float:
        for block in reversed(self._blocks):
            if not block.is_empty:
                return block.timestamp
        # No real block yet (only genesis/empties): no lower bound.
        return float("-inf")

    # --- Write API --------------------------------------------------------

    def append(self, block: Block, certificate: object | None = None,
               seed_override: bytes | None = None) -> None:
        """Append an agreed block and advance state and seeds.

        ``seed_override`` supplies the round seed when the block is empty
        or its embedded seed was rejected; if omitted, the canonical
        ``H(seed_{r-1} || r)`` fallback is used for empty blocks.
        """
        expected_round = self.next_round
        if block.round_number != expected_round:
            raise LedgerError(
                f"appending round {block.round_number}, expected "
                f"{expected_round}"
            )
        if block.prev_hash != self.tip_hash:
            raise LedgerError("block does not extend the current tip")
        self._state.apply_all(block.transactions)
        if seed_override is not None:
            next_seed = seed_override
        elif block.seed is not None:
            next_seed = block.seed
        else:
            next_seed = fallback_seed(
                self._seeds.seed_of_round(expected_round - 1)
                if expected_round > 0 else self._genesis_seed,
                expected_round,
            )
        self._seeds.append(next_seed)
        self._blocks.append(block)
        self._weight_history.append(self._state.weights())
        if certificate is not None:
            self._certificates[expected_round] = certificate

    def fork_from(self, blocks: Iterable[Block]) -> "Blockchain":
        """Build a fresh chain from genesis using ``blocks`` (rounds 1..n).

        Used when recovery decides a different fork wins: state and seeds
        are recomputed from scratch, validating linkage along the way.
        """
        clone = Blockchain(self._initial_balances, self._genesis_seed,
                           self._seeds.refresh_interval,
                           state_factory=self._state_factory)
        for block in blocks:
            clone.append(block)
        return clone

    def replica(self) -> "Blockchain":
        """Cheap same-tip clone for materializing a new agent.

        Where :meth:`fork_from` replays every block from genesis (O(r)
        transaction re-application), a replica copies the derived views
        directly: block/seed lists are shared-ref copies, weight-history
        entries are the same frozen snapshots, and the account state is
        one ``state.copy()``. The clone is independent — appends to
        either chain never touch the other — and byte-identical to what
        a genesis replay would produce.
        """
        clone = Blockchain.__new__(Blockchain)
        clone._initial_balances = self._initial_balances
        clone._genesis_seed = self._genesis_seed
        clone._state_factory = self._state_factory
        clone._blocks = list(self._blocks)
        clone._certificates = dict(self._certificates)
        clone._final_certificates = dict(self._final_certificates)
        clone._state = self._state.copy()
        clone._seeds = self._seeds.copy()
        clone._weight_history = list(self._weight_history)
        return clone

    def shares_prefix_with(self, other: "Blockchain") -> int:
        """Length of the common prefix (in blocks, counting genesis)."""
        common = 0
        for mine, theirs in zip(self._blocks, other._blocks):
            if mine.block_hash != theirs.block_hash:
                break
            common += 1
        return common
