"""Ledger substrate: transactions, accounts, blocks, chains, storage."""

from repro.ledger.account import AccountState
from repro.ledger.block import (
    Block,
    empty_block,
    empty_block_hash,
    validate_block,
)
from repro.ledger.blockchain import GENESIS_PREV_HASH, Blockchain, make_genesis
from repro.ledger.mempool import Mempool
from repro.ledger.persistence import (
    chain_from_bytes,
    chain_to_bytes,
    load_chain,
    save_chain,
)
from repro.ledger.storage import (
    PAPER_CERTIFICATE_BYTES,
    ShardedStore,
    shard_of_key,
    stores_round,
)
from repro.ledger.transaction import Transaction, make_transaction

__all__ = [
    "AccountState",
    "Block",
    "empty_block",
    "empty_block_hash",
    "validate_block",
    "Blockchain",
    "make_genesis",
    "GENESIS_PREV_HASH",
    "Mempool",
    "chain_to_bytes",
    "chain_from_bytes",
    "save_chain",
    "load_chain",
    "Transaction",
    "make_transaction",
    "ShardedStore",
    "shard_of_key",
    "stores_round",
    "PAPER_CERTIFICATE_BYTES",
]
