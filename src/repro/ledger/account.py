"""Account state: balances and nonces derived from the transaction log.

The list of transactions in the chain "logically translates to a set of
weights for each user's public key" (section 8.1). :class:`AccountState`
is that translation: it applies blocks in order and exposes the weight
table that sortition verification reads.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Iterable, Mapping

from repro.common.errors import InvalidTransaction
from repro.ledger.transaction import Transaction


class AccountState:
    """Mutable balances/nonces; one instance per chain tip per node."""

    def __init__(self, balances: Mapping[bytes, int] | None = None) -> None:
        self._balances: dict[bytes, int] = dict(balances or {})
        for public, balance in self._balances.items():
            if balance < 0:
                raise ValueError(f"negative initial balance for {public.hex()}")
        self._nonces: dict[bytes, int] = {}
        self._weights_cache: Mapping[bytes, int] | None = None

    def copy(self) -> "AccountState":
        clone = AccountState()
        clone._balances = dict(self._balances)
        clone._nonces = dict(self._nonces)
        return clone

    def balance(self, public: bytes) -> int:
        return self._balances.get(public, 0)

    def next_nonce(self, public: bytes) -> int:
        return self._nonces.get(public, 0)

    @property
    def total_weight(self) -> int:
        """Total currency ``W`` — the sortition denominator."""
        return sum(self._balances.values())

    def weights(self) -> Mapping[bytes, int]:
        """Shared immutable snapshot of the weight table.

        Cached until the next :meth:`apply`: every caller between two
        mutations — the node's sortition context, the chain's per-round
        weight history, recovery and catch-up — shares one frozen
        mapping instead of each rebuilding an N-entry dict. The proxy
        wraps a private copy, so later state mutations can never drift
        a snapshot that a round context already holds.
        """
        if self._weights_cache is None:
            self._weights_cache = MappingProxyType(dict(self._balances))
        return self._weights_cache

    def check(self, tx: Transaction) -> None:
        """Validate ``tx`` against current state (no signature check here).

        Raises:
            InvalidTransaction: on overspend or nonce mismatch.
        """
        tx.check_shape()
        if tx.nonce != self.next_nonce(tx.sender):
            raise InvalidTransaction(
                f"nonce {tx.nonce} != expected {self.next_nonce(tx.sender)}"
            )
        if self.balance(tx.sender) < tx.amount:
            raise InvalidTransaction(
                f"overspend: balance {self.balance(tx.sender)} < {tx.amount}"
            )

    def apply(self, tx: Transaction) -> None:
        """Apply a validated transaction; raises if it does not validate."""
        self.check(tx)
        self._weights_cache = None
        self._balances[tx.sender] -= tx.amount
        if self._balances[tx.sender] == 0:
            del self._balances[tx.sender]
        self._balances[tx.recipient] = self.balance(tx.recipient) + tx.amount
        self._nonces[tx.sender] = tx.nonce + 1

    def apply_all(self, transactions: Iterable[Transaction]) -> None:
        for tx in transactions:
            self.apply(tx)

    def would_accept(self, transactions: Iterable[Transaction]) -> bool:
        """Dry-run validity of a transaction sequence (used by validators)."""
        trial = self.copy()
        try:
            trial.apply_all(transactions)
        except InvalidTransaction:
            return False
        return True
