"""Pending-transaction pool.

Every user "collects a block of pending transactions that they hear about,
in case they are chosen to propose the next block" (section 4). The pool
deduplicates by txid, evicts transactions that a newly agreed block has
committed or invalidated, and assembles size-bounded candidate blocks in
arrival order (FIFO — there are no fees to order by in the paper).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.common.errors import InvalidTransaction
from repro.ledger.account import AccountState
from repro.ledger.transaction import Transaction


class Mempool:
    """FIFO transaction pool with a byte-size cap."""

    def __init__(self, max_bytes: int = 16_000_000) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self._max_bytes = max_bytes
        self._pool: OrderedDict[bytes, Transaction] = OrderedDict()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, txid: bytes) -> bool:
        return txid in self._pool

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def add(self, tx: Transaction) -> bool:
        """Insert a transaction; returns False on duplicate or overflow."""
        if tx.txid in self._pool:
            return False
        if self._bytes + tx.size > self._max_bytes:
            return False
        self._pool[tx.txid] = tx
        self._bytes += tx.size
        return True

    def remove(self, txids: Iterable[bytes]) -> None:
        for txid in txids:
            tx = self._pool.pop(txid, None)
            if tx is not None:
                self._bytes -= tx.size

    def next_nonce_for(self, state: AccountState, sender: bytes) -> int:
        """First nonce ``sender`` can safely use: past both committed
        state and this pool's pending transactions."""
        nonce = state.next_nonce(sender)
        for tx in self._pool.values():
            if tx.sender == sender and tx.nonce >= nonce:
                nonce = tx.nonce + 1
        return nonce

    def assemble(self, state: AccountState, max_block_bytes: int
                 ) -> list[Transaction]:
        """Greedily pick valid transactions up to ``max_block_bytes``.

        Transactions are taken in arrival order and validated against a
        trial copy of ``state`` so the assembled list always applies
        cleanly (a malformed list would make validators reject the whole
        block, per section 8.1).
        """
        trial = state.copy()
        chosen: list[Transaction] = []
        used = 0
        for tx in self._pool.values():
            if used + tx.size > max_block_bytes:
                continue
            try:
                trial.apply(tx)
            except InvalidTransaction:
                continue
            chosen.append(tx)
            used += tx.size
        return chosen

    def prune_committed(self, block_transactions: Iterable[Transaction],
                        state: AccountState) -> None:
        """Drop committed transactions and any now-invalid leftovers."""
        self.remove(tx.txid for tx in block_transactions)
        stale = []
        trial = state.copy()
        for txid, tx in self._pool.items():
            try:
                trial.check(tx)
            except InvalidTransaction:
                # Either replayed (old nonce) or now overspending.
                if tx.nonce < trial.next_nonce(tx.sender):
                    stale.append(txid)
        self.remove(stale)
