"""Gossip-graph connectivity analysis (section 8.4 "Scalability").

The paper argues its gossip fabric scales because (a) the random peer
graph has one giant connected component containing almost all users, and
(b) dissemination time grows with that component's diameter, which is
logarithmic in the number of users [45]; the few users that land outside
the giant component recover when peers reshuffle next round [22].

These claims are measurable properties of the generated topology; this
module measures them with :mod:`networkx` on graphs built by the same
peer-selection rule as :class:`repro.network.gossip.GossipNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np


def build_gossip_graph(num_nodes: int, peers_per_node: int,
                       rng: np.random.Generator) -> nx.Graph:
    """The gossip topology: each node picks ``peers_per_node`` random
    outgoing peers; edges are undirected (same rule as the simulator)."""
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    k = min(peers_per_node, num_nodes - 1)
    for node in range(num_nodes):
        peers = rng.choice(num_nodes - 1, size=k, replace=False)
        for peer in peers:
            target = int(peer) + (1 if peer >= node else 0)
            graph.add_edge(node, target)
    return graph


@dataclass(frozen=True)
class TopologyReport:
    """Connectivity metrics of one generated gossip graph."""

    num_nodes: int
    peers_per_node: int
    giant_component_fraction: float
    diameter: int            # of the giant component
    average_degree: float
    isolated_nodes: int

    @property
    def fully_connected(self) -> bool:
        return self.giant_component_fraction == 1.0


def analyze_topology(num_nodes: int, peers_per_node: int = 4,
                     seed: int = 0) -> TopologyReport:
    """Measure the section 8.4 claims for one graph instance."""
    rng = np.random.default_rng(seed)
    graph = build_gossip_graph(num_nodes, peers_per_node, rng)
    components = sorted(nx.connected_components(graph), key=len,
                        reverse=True)
    giant = graph.subgraph(components[0])
    return TopologyReport(
        num_nodes=num_nodes,
        peers_per_node=peers_per_node,
        giant_component_fraction=len(giant) / num_nodes,
        diameter=nx.diameter(giant),
        average_degree=2 * graph.number_of_edges() / num_nodes,
        isolated_nodes=sum(1 for _, degree in graph.degree()
                           if degree == 0),
    )


def diameter_scaling(sizes: list[int] | None = None,
                     peers_per_node: int = 4,
                     seed: int = 0) -> list[TopologyReport]:
    """Diameter vs network size — the logarithmic-growth claim [45]."""
    if sizes is None:
        sizes = [50, 200, 800, 3200]
    return [analyze_topology(n, peers_per_node, seed=seed + i)
            for i, n in enumerate(sizes)]


def expected_dissemination_hops(num_nodes: int, peers_per_node: int = 4,
                                seed: int = 0,
                                samples: int = 20) -> float:
    """Mean shortest-path length from random sources — gossip hop count.

    Dissemination latency is (hops x per-hop latency); this is the hops
    factor the paper's flat-latency scaling relies on.
    """
    rng = np.random.default_rng(seed)
    graph = build_gossip_graph(num_nodes, peers_per_node, rng)
    giant = graph.subgraph(
        max(nx.connected_components(graph), key=len))
    nodes = list(giant.nodes)
    sources = rng.choice(len(nodes), size=min(samples, len(nodes)),
                         replace=False)
    total, count = 0.0, 0
    for source_index in sources:
        lengths = nx.single_source_shortest_path_length(
            giant, nodes[int(source_index)])
        total += sum(lengths.values())
        count += len(lengths)
    return total / count
