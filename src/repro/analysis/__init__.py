"""Analytical reproductions: committee sizing (Figure 3), BA* step
counts (section 7 efficiency), and gossip-graph connectivity (section 8.4)."""

from repro.analysis.graph import (
    TopologyReport,
    analyze_topology,
    build_gossip_graph,
    diameter_scaling,
    expected_dissemination_hops,
)
from repro.analysis.steps import (
    COMMON_CASE_STEPS,
    expected_binary_steps_worst_case,
    expected_total_steps_worst_case,
    loop_success_probability,
    max_steps_for_failure_probability,
    probability_exceeds_max_steps,
)
from repro.analysis.committee import (
    FIGURE3_EPSILON,
    Figure3Point,
    best_threshold,
    certificate_forgery_log2,
    check_paper_step_parameters,
    committee_size_for,
    figure3_curve,
    final_step_safety,
    violation_probability,
)

__all__ = [
    "FIGURE3_EPSILON",
    "Figure3Point",
    "violation_probability",
    "best_threshold",
    "committee_size_for",
    "figure3_curve",
    "check_paper_step_parameters",
    "final_step_safety",
    "certificate_forgery_log2",
    "COMMON_CASE_STEPS",
    "loop_success_probability",
    "expected_binary_steps_worst_case",
    "expected_total_steps_worst_case",
    "probability_exceeds_max_steps",
    "max_steps_for_failure_probability",
    "TopologyReport",
    "build_gossip_graph",
    "analyze_topology",
    "diameter_scaling",
    "expected_dissemination_hops",
]
