"""BA* step-count analysis (section 7 "Efficiency", Appendix C.3 flavor).

The paper's efficiency claims:

* **common case** (strong synchrony, honest highest-priority proposer):
  BA* "terminates precisely in 4 interactive steps" — two reduction
  steps, one BinaryBA* step, and the final confirmation step;
* **worst case** (malicious highest-priority proposer colluding with a
  large committee fraction): "all honest users reach consensus on the
  next block within expected 13 steps" — the reduction's two steps plus
  an expected 11 BinaryBA* steps.

The worst-case number comes from a simple Markov argument: a colluding
adversary can keep honest users split through the two deterministic
steps of every BinaryBA* loop, but the third step's common coin is
unpredictable — the split survives a loop only if the lowest sortition
hash is adversarial (probability ``1 - h``) or the coin favors the
adversary's split (probability ``1/2`` given an honest lowest hash). So
each 3-step loop ends the attack with probability ``p = h/2``, giving an
expected ``3 / p`` BinaryBA* steps plus the closing steps. This module
computes those quantities and the tail probability of hitting MaxSteps.
"""

from __future__ import annotations

import math

#: Interactive steps in the common case: reduction (2) + BinaryBA* step 1
#: + the final confirmation step (section 7 "Efficiency").
COMMON_CASE_STEPS = 4


def loop_success_probability(honest_fraction: float) -> float:
    """P[a 3-step BinaryBA* loop ends an adversarial split] = h/2.

    The coin is the least-significant bit of the lowest sortition hash
    in the step. With probability ``h`` that hash belongs to an honest
    user (so every honest user sees the same coin), and the adversary
    guessed the coin wrong with probability 1/2.
    """
    if not 0 < honest_fraction <= 1:
        raise ValueError("honest_fraction must be in (0, 1]")
    return honest_fraction / 2.0


def expected_binary_steps_worst_case(
        honest_fraction: float = 2 / 3 + 1e-9) -> float:
    """Expected BinaryBA* steps against the strongest splitting attack.

    A geometric number of 3-step loops at success rate ``h/2`` ("at
    least an h > 2/3 probability that the lowest sortition hash holder
    will be honest, which leads to consensus with probability
    1/2 * h > 1/3 at each loop iteration", section 7.4), plus two
    closing steps: one in which the coin-aligned honest users assemble a
    quorum and one confirming return. At the paper's worst-case
    assumption h -> 2/3 this is 3 * 3 + 2 = 11 steps — the paper's
    "expected 11 steps in the worst case"; at the deployed h = 80% the
    attack is cheaper to shake off (~9.5).
    """
    p = loop_success_probability(honest_fraction)
    return 3.0 / p + 2.0


def expected_total_steps_worst_case(
        honest_fraction: float = 2 / 3 + 1e-9) -> float:
    """Reduction (2 steps) + worst-case BinaryBA* expectation.

    The paper: "all honest users reach consensus on the next block
    within expected 13 steps" — 2 + 11 at h -> 2/3.
    """
    return 2.0 + expected_binary_steps_worst_case(honest_fraction)


def probability_exceeds_max_steps(max_steps: int = 150,
                                  honest_fraction: float = 0.80) -> float:
    """P[the splitting attack survives past MaxSteps] (Appendix C.3).

    The attack must win every coin loop: ``(1 - h/2) ** (MaxSteps // 3)``.
    """
    if max_steps < 3:
        raise ValueError("max_steps must be >= 3")
    p = loop_success_probability(honest_fraction)
    return (1.0 - p) ** (max_steps // 3)


def max_steps_for_failure_probability(epsilon: float,
                                      honest_fraction: float = 0.80) -> int:
    """Smallest MaxSteps bounding the attack's survival below epsilon.

    Inverse of :func:`probability_exceeds_max_steps`; the paper picks
    MaxSteps = 150, comfortably beyond the 5e-9 regime it uses elsewhere.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1)")
    p = loop_success_probability(honest_fraction)
    loops = math.ceil(math.log(epsilon) / math.log(1.0 - p))
    return 3 * loops
