"""Committee-size analysis (section 7.5, Appendix B; reproduces Figure 3).

BA*'s per-step committee must satisfy two constraints (with ``g`` honest
and ``b`` malicious selected sub-users, in expectation ``g + b = tau``):

* **liveness**:   ``g > T * tau``  — honest members alone can cross the
  vote threshold;
* **safety**:     ``g/2 + b <= T * tau`` — the adversary, even using half
  the honest votes observed so far, cannot assemble a quorum for a second
  value.

With many small-weight users, ``g ~ Poisson(h * tau)`` and
``b ~ Poisson((1-h) * tau)`` independently (the binomial sortition
converges to Poisson at cryptocurrency scale). The probability that a
step *violates* either constraint is::

    P_violation(tau, T) = P[g <= T*tau] + P[g/2 + b > T*tau]

Figure 3 plots, for each honest fraction ``h``, the smallest ``tau`` for
which some threshold ``T`` keeps this below 5e-9. At ``h = 80%`` the
paper selects ``tau_step = 2000`` with ``T_step = 0.685`` — the solver
here reproduces both (tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.stats import poisson

#: The violation probability used for Figure 3.
FIGURE3_EPSILON = 5e-9


def violation_probability(tau: float, threshold: float,
                          honest_fraction: float) -> float:
    """P[step violates liveness or safety] under the Poisson model."""
    if not 0 < honest_fraction <= 1:
        raise ValueError("honest_fraction must be in (0, 1]")
    if tau <= 0:
        raise ValueError("tau must be positive")
    quorum = threshold * tau
    mean_honest = honest_fraction * tau
    mean_bad = (1.0 - honest_fraction) * tau

    # Liveness failure: honest members alone cannot reach the quorum.
    p_liveness = poisson.cdf(math.floor(quorum), mean_honest)

    # Safety failure: g/2 + b > quorum, i.e. g > 2*(quorum - b).
    # Sum over plausible b (the Poisson tail beyond the cut is added
    # wholesale, which is conservative).
    b_hi = int(mean_bad + 12 * math.sqrt(max(mean_bad, 1.0))) + 2
    b_values = np.arange(0, b_hi)
    b_pmf = poisson.pmf(b_values, mean_bad)
    g_needed = 2.0 * (quorum - b_values)
    p_g_exceeds = poisson.sf(np.floor(g_needed), mean_honest)
    p_g_exceeds[g_needed < 0] = 1.0
    p_safety = float(np.dot(b_pmf, p_g_exceeds))
    p_safety += float(poisson.sf(b_hi - 1, mean_bad))  # tail of b

    return min(1.0, p_liveness + p_safety)


def best_threshold(tau: float, honest_fraction: float,
                   grid: int = 200) -> tuple[float, float]:
    """The threshold T minimizing the violation probability.

    Returns ``(T, P_violation)``. T is searched on a grid in
    ``(2/3, h)`` — below 2/3 BA* loses its safety argument, above ``h``
    liveness is hopeless.
    """
    lo = 2.0 / 3.0 + 1e-6
    hi = honest_fraction - 1e-6
    best = (lo, 1.0)
    for t in np.linspace(lo, hi, grid):
        p = violation_probability(tau, float(t), honest_fraction)
        if p < best[1]:
            best = (float(t), p)
    return best


def committee_size_for(honest_fraction: float,
                       epsilon: float = FIGURE3_EPSILON,
                       tau_max: int = 200_000) -> tuple[int, float]:
    """Smallest expected committee size meeting ``epsilon`` (Figure 3).

    Returns ``(tau, T)``. Binary-searches tau; each candidate picks its
    own best threshold.
    """
    def feasible(tau: int) -> bool:
        return best_threshold(tau, honest_fraction)[1] <= epsilon

    lo, hi = 1, tau_max
    if not feasible(hi):
        raise ValueError(
            f"no committee up to {tau_max} meets epsilon={epsilon} at "
            f"h={honest_fraction}"
        )
    while lo < hi:
        mid = (lo + hi) // 2
        if feasible(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo, best_threshold(lo, honest_fraction)[0]


@dataclass(frozen=True)
class Figure3Point:
    honest_fraction: float
    committee_size: int
    threshold: float


def figure3_curve(honest_fractions: list[float] | None = None,
                  epsilon: float = FIGURE3_EPSILON) -> list[Figure3Point]:
    """Compute the Figure 3 curve: committee size vs honest fraction."""
    if honest_fractions is None:
        honest_fractions = [0.76, 0.78, 0.80, 0.82, 0.84, 0.86, 0.88, 0.90]
    points = []
    for h in honest_fractions:
        tau, threshold = committee_size_for(h, epsilon)
        points.append(Figure3Point(honest_fraction=h, committee_size=tau,
                                   threshold=threshold))
    return points


def check_paper_step_parameters(honest_fraction: float = 0.80,
                                tau: float = 2000.0,
                                threshold: float = 0.685) -> float:
    """Violation probability of the paper's chosen (tau_step, T_step).

    The paper claims ~5e-9 at h = 80%; callers assert the order of
    magnitude.
    """
    return violation_probability(tau, threshold, honest_fraction)


def final_step_safety(honest_fraction: float = 0.80,
                      tau_final: float = 10_000.0,
                      t_final: float = 0.74) -> float:
    """Probability the adversary can assemble a *final* quorum (C.1 flavor).

    For the final step, safety requires that the adversary plus half the
    honest voters cannot reach ``T_final * tau_final``; with tau = 10000
    and T = 0.74 this is astronomically unlikely, which is why one final
    vote suffices to exclude competing blocks for the round.
    """
    return violation_probability(tau_final, t_final, honest_fraction)


def certificate_forgery_log2(tau: float = 2000.0,
                             threshold: float = 0.685,
                             honest_fraction: float = 0.80) -> float:
    """log2 P[adversary alone crosses a step quorum] (section 8.3).

    An adversary hunting over steps for a forged certificate needs its own
    selected sub-users ``b > T * tau``. The paper reports < 2^-166 per
    step for tau_step > 1000; the probability is far below float
    underflow, so it is returned as a log2.
    """
    mean_bad = (1.0 - honest_fraction) * tau
    k = math.floor(threshold * tau)
    # scipy's logsf underflows this far out; bound the tail by the first
    # term times a geometric correction:
    #   P(X > k) <= pmf(k+1) / (1 - mu/(k+2))    for k+2 > mu.
    if k + 2 <= mean_bad:
        return 0.0  # not a tail at all
    log_p = float(poisson.logpmf(k + 1, mean_bad))
    log_p -= math.log(1.0 - mean_bad / (k + 2))
    return log_p / math.log(2)
