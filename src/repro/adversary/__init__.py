"""Adversary models: Byzantine node strategies and network control."""

from repro.adversary.network_control import (
    FilterChain,
    Partitioner,
    TargetedDoS,
    isolate,
)
from repro.adversary.strategies import (
    DoubleVotingNode,
    EquivocatingProposerNode,
    MaliciousNode,
    SilentNode,
)

__all__ = [
    "EquivocatingProposerNode",
    "DoubleVotingNode",
    "MaliciousNode",
    "SilentNode",
    "FilterChain",
    "Partitioner",
    "TargetedDoS",
    "isolate",
]
