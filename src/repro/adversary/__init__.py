"""Adversary models: Byzantine node strategies and network control."""

from repro.adversary.network_control import (
    FilterChain,
    Partitioner,
    TargetedDoS,
    isolate,
)
from repro.adversary.strategies import (
    DoubleVotingNode,
    EquivocatingProposerNode,
    FloodingNode,
    MaliciousNode,
    SilentNode,
    SpamVoteNode,
)

__all__ = [
    "EquivocatingProposerNode",
    "DoubleVotingNode",
    "FloodingNode",
    "MaliciousNode",
    "SilentNode",
    "SpamVoteNode",
    "FilterChain",
    "Partitioner",
    "TargetedDoS",
    "isolate",
]
