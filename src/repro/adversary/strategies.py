"""Byzantine node strategies (section 10.4's evaluated attack and friends).

The paper's misbehaving-user experiment (Figure 8) combines two behaviors:

* the highest-priority **proposer equivocates**, sending one version of
  its block to half of its peers and a different version to the rest;
* malicious **committee members vote for both** versions in every BA*
  step.

:class:`EquivocatingProposerNode` and :class:`DoubleVotingNode` implement
these; :class:`MaliciousNode` combines them (and is what the Figure 8
experiment deploys). All strategies still track the honest chain — a
Byzantine node that loses the chain stops being able to attack.
"""

from __future__ import annotations

from repro.baplus.messages import VoteMessage, make_vote
from repro.crypto.hashing import H
from repro.ledger.block import Block, empty_block_hash
from repro.network.message import block_envelope, priority_envelope, vote_envelope
from repro.node.agent import Node
from repro.node.proposal import ProposalTracker, make_priority_message


class EquivocatingProposerNode(Node):
    """Proposes two conflicting block versions to disjoint peer halves."""

    def propose_block(self, round_number: int, ctx, proof,
                      tracker: ProposalTracker) -> None:
        base = self.assemble_block(round_number, proof)
        # Version B drops the last transaction (or, if empty, differs by
        # timestamp) so the two blocks hash differently but both validate.
        if base.transactions:
            alt_txs = base.transactions[:-1]
        else:
            alt_txs = base.transactions
        variant = Block(
            round_number=base.round_number, prev_hash=base.prev_hash,
            timestamp=base.timestamp + 1e-6, seed=base.seed,
            seed_proof=base.seed_proof, proposer=base.proposer,
            proposer_vrf_hash=base.proposer_vrf_hash,
            proposer_vrf_proof=base.proposer_vrf_proof,
            proposer_priority=base.proposer_priority,
            transactions=alt_txs,
        )
        self.registry.register(base)
        self.registry.register(variant)
        announcement = make_priority_message(self.keypair.public,
                                             round_number, proof)
        self._seen_priorities.add((self.keypair.public, round_number))
        tracker.observe_priority(announcement, self.env)
        # The attacker itself tracks version A (it must keep a chain).
        tracker.observe_block(base, self.env)
        self.interface.broadcast(
            priority_envelope(self.keypair.public, announcement))
        neighbors = self.interface.neighbors
        half = len(neighbors) // 2
        self.interface.send_to(
            block_envelope(self.keypair.public, base, base.size),
            neighbors[:half])
        self.interface.send_to(
            block_envelope(self.keypair.public, variant, variant.size),
            neighbors[half:])


class DoubleVotingNode(Node):
    """Votes for two conflicting values in every BA* step.

    Each committee vote the honest code path would send is paired with a
    second, conflicting vote carrying the same (valid!) sortition proof,
    and the two are pushed to disjoint peer halves. Honest nodes count
    only the first vote they see per voter, so this splits the honest
    vote count between values — the strongest thing a committee member
    can do without forging sortition.
    """

    def _conflicting_value(self, vote: VoteMessage) -> bytes:
        empty = empty_block_hash(vote.round_number, vote.prev_hash)
        if vote.value != empty:
            return empty
        return H(b"equivocation", vote.prev_hash)

    def _gossip_vote(self, vote: VoteMessage) -> None:
        second = make_vote(
            self.backend, self.keypair.secret, self.keypair.public,
            vote.round_number, vote.step, vote.sorthash, vote.sortproof,
            vote.prev_hash, self._conflicting_value(vote),
        )
        self._seen_votes.add((vote.voter, vote.round_number, vote.step))
        self.buffer.add(vote)
        neighbors = self.interface.neighbors
        half = len(neighbors) // 2
        self.interface.send_to(vote_envelope(self.keypair.public, vote),
                               neighbors[:half])
        self.interface.send_to(vote_envelope(self.keypair.public, second),
                               neighbors[half:])


class MaliciousNode(DoubleVotingNode, EquivocatingProposerNode):
    """The full section 10.4 adversary: equivocate + double-vote."""


class FloodingNode(Node):
    """Sprays invalid-signature votes at the network (link-level DoS).

    The junk is cheap to make and cheap to reject — the point is volume:
    without admission control every copy is relayed network-wide and
    buffered forever; with it, each neighbor rejects the votes at
    ingress (never relaying them), scores this node, and eventually
    quarantines it. Otherwise behaves honestly, so the attack isolates
    the flooding dimension. The flood loop is counter-based (no RNG), so
    runs stay deterministic.
    """

    flood_batch = 48
    flood_interval = 0.5

    def start(self, target_height: int):
        self.env.process(self._flood_loop(), f"flood-{self.index}")
        return super().start(target_height)

    def _flood_loop(self):
        counter = 0
        while True:
            yield self.env.timeout(self.flood_interval)
            if self.crashed or self.interface.disconnected:
                continue
            for _ in range(self.flood_batch):
                counter += 1
                junk = H(b"flood", self.keypair.public, counter.to_bytes(8, "big"))
                vote = VoteMessage(
                    voter=self.keypair.public,
                    round_number=self.chain.next_round,
                    step="reduction_one",
                    sorthash=junk, sortproof=junk,
                    prev_hash=self.chain.tip_hash,
                    value=junk, signature=junk[:32],
                )
                self.interface.broadcast(
                    vote_envelope(self.keypair.public, vote))


class SpamVoteNode(Node):
    """Floods validly *signed* votes for far-future rounds.

    The "undecidable messages" DoS of PAPERS.md: each vote carries a real
    signature but claims a round no receiver can validate yet, so it
    passes signature checks and must be buffered on the off-chance it
    becomes relevant. Bounded vote buffers with future-first eviction
    plus the per-origin flood budget are the countermeasures this node
    exists to exercise.
    """

    spam_batch = 16
    spam_interval = 0.5
    spam_horizon = 100

    def start(self, target_height: int):
        self.env.process(self._spam_loop(), f"spam-{self.index}")
        return super().start(target_height)

    def _spam_loop(self):
        counter = 0
        while True:
            yield self.env.timeout(self.spam_interval)
            if self.crashed or self.interface.disconnected:
                continue
            for _ in range(self.spam_batch):
                counter += 1
                junk = H(b"spam", self.keypair.public,
                         counter.to_bytes(8, "big"))
                vote = make_vote(
                    self.backend, self.keypair.secret, self.keypair.public,
                    self.chain.next_round + self.spam_horizon + counter,
                    "reduction_one", junk, junk, self.chain.tip_hash, junk,
                )
                self.interface.broadcast(
                    vote_envelope(self.keypair.public, vote))


class SilentNode(Node):
    """A fail-stop node: never proposes, never votes (offline stake).

    Used by liveness-margin experiments: BA* tolerates silent weight as
    long as the remaining honest committee clears the vote threshold.
    """

    def propose_block(self, round_number: int, ctx, proof, tracker) -> None:
        return

    def _gossip_vote(self, vote: VoteMessage) -> None:
        return
