"""Adversarial network control: partitions and targeted DoS.

Both are built from the gossip layer's single ``drop_filter`` hook, which
is exactly the power the paper grants the adversary in its weak-synchrony
model (full control of the links for a bounded period).
"""

from __future__ import annotations

from typing import Iterable

from repro.network.gossip import GossipNetwork
from repro.network.message import Envelope


class FilterChain:
    """Composes several drop predicates into one ``drop_filter``.

    A previously installed ``drop_filter`` is absorbed as the chain's
    first predicate instead of being silently clobbered, so constructing
    a second chain (or chaining on top of a bare filter) keeps every
    earlier adversary in force.
    """

    def __init__(self, network: GossipNetwork) -> None:
        self.network = network
        self._filters: list = []
        existing = network.drop_filter
        if existing is not None:
            self._filters.append(existing)
        network.drop_filter = self._evaluate

    def add(self, predicate) -> None:
        self._filters.append(predicate)

    def remove(self, predicate) -> None:
        self._filters.remove(predicate)

    def _evaluate(self, src: int, dst: int, envelope: Envelope) -> bool:
        return any(predicate(src, dst, envelope)
                   for predicate in self._filters)


class Partitioner:
    """Splits the network into groups for a time window.

    Messages crossing group boundaries are dropped while active. This is
    the adversary of the weak-synchrony assumption: after ``heal()`` (or
    the scheduled end time) the network is strongly synchronous again.
    """

    def __init__(self, chain: FilterChain, groups: list[set[int]]) -> None:
        self._chain = chain
        self._groups = groups
        self._active = False

    def _group_of(self, node: int) -> int:
        for index, group in enumerate(self._groups):
            if node in group:
                return index
        return -1

    def _drop(self, src: int, dst: int, envelope: Envelope) -> bool:
        return self._active and self._group_of(src) != self._group_of(dst)

    def activate(self) -> None:
        if not self._active:
            self._active = True
            self._chain.add(self._drop)

    def heal(self) -> None:
        if self._active:
            self._active = False
            self._chain.remove(self._drop)

    def schedule(self, env, start: float, end: float) -> None:
        """Partition during ``[start, end)`` simulated seconds."""
        if end <= start:
            raise ValueError("partition must end after it starts")
        env.schedule(start, self.activate)
        env.schedule(end, self.heal)


class TargetedDoS:
    """Disconnects any node shortly after it reveals itself as a proposer.

    Models the attack of section 8.4: the adversary watches for priority
    announcements and knocks the announcer offline after ``reaction_time``
    seconds. Algorand's defense is that by then the block (or at least
    the announcement) is already propagating and the proposer's job is
    done — committee members for later steps are fresh, unexposed users.
    """

    def __init__(self, chain: FilterChain, env,
                 reaction_time: float = 1.0,
                 restore_after: float | None = None,
                 max_concurrent: int = 2) -> None:
        if reaction_time < 0:
            raise ValueError("reaction_time must be >= 0")
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self._chain = chain
        self._env = env
        self.reaction_time = reaction_time
        self.restore_after = restore_after
        #: Adversary capacity: how many victims it can keep offline at
        #: once. The paper's model allows *targeted* attacks, not mass
        #: disconnection — honest stake must stay over the threshold.
        self.max_concurrent = max_concurrent
        self.victims: list[int] = []
        self._attacked: set[int] = set()
        self._active = 0
        chain.add(self._watch)

    def _watch(self, src: int, dst: int, envelope: Envelope) -> bool:
        if envelope.kind == "priority":
            origin = self._origin_index(envelope)
            if origin is not None and origin not in self._attacked:
                self._attacked.add(origin)
                self._env.schedule(self.reaction_time,
                                   lambda o=origin: self._strike(o))
        return False  # observing only; never drops by itself

    def _origin_index(self, envelope: Envelope) -> int | None:
        payload = envelope.payload
        proposer = getattr(payload, "proposer", None)
        if proposer is None:
            return None
        for index, iface in enumerate(self._chain.network.interfaces):
            node = getattr(iface, "relay_policy", None)
            owner = getattr(node, "__self__", None)
            if owner is not None and owner.keypair.public == proposer:
                return index
        return None

    def _strike(self, victim: int) -> None:
        if self._active >= self.max_concurrent:
            self._attacked.discard(victim)  # may retry later
            return
        self._active += 1
        self.victims.append(victim)
        iface = self._chain.network.interfaces[victim]
        iface.disconnected = True
        if self.restore_after is not None:
            self._env.schedule(self.restore_after,
                               lambda: self._release(iface))

    def _release(self, iface) -> None:
        iface.disconnected = False
        self._active -= 1


def isolate(network: GossipNetwork, nodes: Iterable[int]) -> None:
    """Permanently disconnect ``nodes`` (eclipse/DoS of specific users)."""
    for index in nodes:
        network.interfaces[index].disconnected = True
