"""Double-spend analysis for Nakamoto consensus.

The paper's motivation (sections 1-2): PoW admits forks, so merchants
must wait ~6 blocks (an hour) before trusting a payment — and even then
only probabilistically. This module quantifies that premise with the
classic race analysis (Nakamoto 2008, closed form due to Rosenfeld): an
attacker holding fraction ``q`` of the hash power secretly extends a
fork; after the merchant sees ``z`` confirmations, the attack succeeds
iff the attacker's chain ever catches up.

Algorand's counterpart needs no such analysis: BA* final consensus rules
out competing blocks outright (probability bounded by the committee
analysis in :mod:`repro.analysis.committee`, ~5e-9 per step), which the
comparison helpers below put side by side.
"""

from __future__ import annotations


from scipy.stats import nbinom


def catch_up_probability(deficit: int, q: float) -> float:
    """P[attacker ever erases a ``deficit``-block disadvantage].

    Gambler's ruin: ``(q/p)^deficit`` for q < p, else 1.
    """
    if not 0 <= q < 1:
        raise ValueError("q must be in [0, 1)")
    if deficit <= 0:
        return 1.0
    p = 1.0 - q
    if q >= p:
        return 1.0
    return (q / p) ** deficit


def double_spend_probability(z: int, q: float) -> float:
    """P[double-spend succeeds] after the merchant waits ``z`` blocks.

    While the honest chain mines its ``z`` confirmation blocks, the
    attacker privately mines ``k ~ NegBinomial(z, p)`` blocks; success if
    ``k >= z`` already, else if the ``z - k`` deficit is ever closed
    (gambler's ruin). This is Rosenfeld's exact form of Nakamoto's
    calculation.
    """
    if z < 0:
        raise ValueError("z must be >= 0")
    if not 0 <= q < 1:
        raise ValueError("q must be in [0, 1)")
    if z == 0 or q == 0:
        return 1.0 if z == 0 else 0.0
    p = 1.0 - q
    total = 0.0
    # k: attacker blocks mined while the honest chain found z.
    # P(k) = NegBinomial: C(k+z-1, k) p^z q^k.
    for k in range(0, z):
        pk = float(nbinom.pmf(k, z, p))
        total += pk * catch_up_probability(z - k, q)
    # k >= z: attacker is already ahead or tied -> wins outright.
    total += float(nbinom.sf(z - 1, z, p))
    return min(1.0, total)


def confirmations_needed(q: float, risk: float = 1e-3,
                         z_max: int = 1000) -> int:
    """Smallest ``z`` with double-spend probability below ``risk``.

    Bitcoin folklore: q = 10% needs ~6 blocks for ~0.1% risk — the
    source of the paper's "about an hour to confirm" premise.
    """
    if not 0 < risk < 1:
        raise ValueError("risk must be in (0, 1)")
    for z in range(1, z_max + 1):
        if double_spend_probability(z, q) < risk:
            return z
    raise ValueError(f"no z <= {z_max} reaches risk {risk} at q={q}")


def confirmation_latency_seconds(q: float, risk: float = 1e-3,
                                 block_interval: float = 600.0) -> float:
    """Expected wait (seconds) for Bitcoin to reach the target risk."""
    return confirmations_needed(q, risk) * block_interval


def algorand_equivalent_wait(round_time: float = 22.0) -> float:
    """Algorand's wait for *stronger* assurance: one final block.

    A block declared final excludes competing blocks outright (violation
    probability ~5e-9 per the committee analysis) — below any practical
    PoW risk target after a single round.
    """
    if round_time <= 0:
        raise ValueError("round_time must be positive")
    return round_time


def speedup_table(qs: tuple[float, ...] = (0.05, 0.10, 0.25),
                  risk: float = 1e-3,
                  block_interval: float = 600.0,
                  algorand_round: float = 22.0
                  ) -> list[dict[str, float]]:
    """Rows of {q, z, bitcoin_wait_s, algorand_wait_s, speedup}."""
    rows = []
    for q in qs:
        z = confirmations_needed(q, risk)
        bitcoin_wait = z * block_interval
        rows.append({
            "q": q,
            "z": z,
            "bitcoin_wait_s": bitcoin_wait,
            "algorand_wait_s": algorand_round,
            "speedup": bitcoin_wait / algorand_round,
        })
    return rows


def expected_attack_revenue(z: int, q: float, payment: float,
                            block_reward: float = 0.0) -> float:
    """Expected value of attempting one double-spend.

    Success yields the payment back (spend twice); failure forfeits the
    attacker's mining time (approximated by forgone block rewards while
    racing). Used by the examples to show why deep confirmations deter
    rational attackers.
    """
    if payment < 0 or block_reward < 0:
        raise ValueError("amounts must be non-negative")
    success = double_spend_probability(z, q)
    return success * payment - (1.0 - success) * block_reward * z * q


def risk_curve(q: float, z_values: range | None = None
               ) -> list[tuple[int, float]]:
    """(z, success probability) points for plotting the classic curve."""
    zs = z_values if z_values is not None else range(0, 11)
    return [(z, double_spend_probability(z, q)) for z in zs]
