"""Nakamoto-consensus (Bitcoin-style proof-of-work) baseline.

The paper's throughput claim (section 10.2) is relative: "Bitcoin commits
a 1 MByte block every 10 minutes, ... 6 MBytes of transactions per hour",
and transactions confirm after 6 blocks (~1 hour). This module provides
that baseline two ways:

* analytically (:func:`expected_confirmation_latency`,
  :func:`throughput_bytes_per_hour`), matching the paper's arithmetic;
* as a small Monte-Carlo miner simulation (:class:`NakamotoSimulator`)
  that also reproduces PoW's characteristic *fork rate* as a function of
  block propagation delay — the phenomenon Algorand eliminates.

The model: block discoveries form a Poisson process with the configured
mean interval; a discovery within ``propagation_delay`` of the previous
one creates a competing block (a fork), and one branch's work is wasted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NakamotoConfig:
    """Bitcoin-like parameters (defaults: Bitcoin mainnet)."""

    block_interval: float = 600.0          # seconds (10 minutes)
    block_size: int = 1_000_000            # bytes
    confirmations: int = 6                 # blocks to wait [7]
    propagation_delay: float = 12.6        # seconds to reach most miners [18]

    def __post_init__(self) -> None:
        if self.block_interval <= 0:
            raise ValueError("block_interval must be positive")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.confirmations < 1:
            raise ValueError("confirmations must be >= 1")
        if self.propagation_delay < 0:
            raise ValueError("propagation_delay must be >= 0")


def expected_confirmation_latency(config: NakamotoConfig) -> float:
    """Mean seconds until a fresh transaction has k confirmations.

    The transaction waits ~one full interval for inclusion (memoryless
    arrival) plus ``confirmations - 1`` further blocks.
    """
    return config.block_interval * config.confirmations


def throughput_bytes_per_hour(config: NakamotoConfig) -> float:
    """Committed bytes per hour, discounting stale (forked) blocks."""
    blocks_per_hour = 3600.0 / config.block_interval
    return blocks_per_hour * config.block_size * (
        1.0 - fork_probability(config))


def fork_probability(config: NakamotoConfig) -> float:
    """P[next block is found before the previous one propagates]."""
    return 1.0 - math.exp(-config.propagation_delay
                          / config.block_interval)


@dataclass(frozen=True)
class NakamotoResult:
    """Aggregate output of one Monte-Carlo run."""

    blocks_mined: int
    blocks_stale: int
    mean_confirmation_latency: float
    throughput_bytes_per_hour: float

    @property
    def fork_rate(self) -> float:
        if self.blocks_mined == 0:
            return 0.0
        return self.blocks_stale / self.blocks_mined


class NakamotoSimulator:
    """Monte-Carlo Bitcoin: Poisson block discovery + propagation races."""

    def __init__(self, config: NakamotoConfig | None = None) -> None:
        self.config = config if config is not None else NakamotoConfig()

    def run(self, num_blocks: int, rng: np.random.Generator,
            transactions: int = 200) -> NakamotoResult:
        """Mine ``num_blocks`` and measure confirmation latency.

        ``transactions`` sample points arrive uniformly over the mining
        period; each waits for inclusion in the next non-stale block plus
        ``confirmations - 1`` successors.
        """
        if num_blocks < self.config.confirmations + 1:
            raise ValueError("need more blocks than the confirmation depth")
        config = self.config
        intervals = rng.exponential(config.block_interval, size=num_blocks)
        times = np.cumsum(intervals)
        # A block is stale if it was found while its predecessor was still
        # propagating (simultaneous-mining race).
        stale = np.zeros(num_blocks, dtype=bool)
        stale[1:] = intervals[1:] < config.propagation_delay
        main_chain = times[~stale]

        horizon = float(times[-1])
        arrivals = rng.uniform(0, horizon * 0.5, size=transactions)
        latencies = []
        for arrival in arrivals:
            index = int(np.searchsorted(main_chain, arrival))
            confirm_index = index + config.confirmations - 1
            if confirm_index < len(main_chain):
                latencies.append(float(main_chain[confirm_index] - arrival))
        committed_bytes = int((~stale).sum()) * config.block_size
        hours = horizon / 3600.0
        return NakamotoResult(
            blocks_mined=num_blocks,
            blocks_stale=int(stale.sum()),
            mean_confirmation_latency=(
                float(np.mean(latencies)) if latencies else float("nan")),
            throughput_bytes_per_hour=committed_bytes / hours,
        )


def paper_comparison(algorand_bytes_per_hour: float,
                     config: NakamotoConfig | None = None) -> float:
    """Algorand-to-Bitcoin throughput ratio (the paper reports 125x)."""
    baseline = throughput_bytes_per_hour(
        config if config is not None else NakamotoConfig())
    return algorand_bytes_per_hour / baseline
