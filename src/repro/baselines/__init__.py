"""Baseline systems the paper compares against (Bitcoin / Nakamoto PoW,
plus the section 2 related-system reference points)."""

from repro.baselines.doublespend import (
    catch_up_probability,
    confirmation_latency_seconds,
    confirmations_needed,
    double_spend_probability,
    risk_curve,
    speedup_table,
)
from repro.baselines.related import (
    BITCOIN,
    BYZCOIN,
    HONEY_BADGER,
    SystemProfile,
    algorand_profile,
    comparison_rows,
    dominates,
)
from repro.baselines.nakamoto import (
    NakamotoConfig,
    NakamotoResult,
    NakamotoSimulator,
    expected_confirmation_latency,
    fork_probability,
    paper_comparison,
    throughput_bytes_per_hour,
)

__all__ = [
    "NakamotoConfig",
    "NakamotoResult",
    "NakamotoSimulator",
    "expected_confirmation_latency",
    "fork_probability",
    "throughput_bytes_per_hour",
    "paper_comparison",
    "double_spend_probability",
    "catch_up_probability",
    "confirmations_needed",
    "confirmation_latency_seconds",
    "speedup_table",
    "risk_curve",
    "SystemProfile",
    "HONEY_BADGER",
    "BYZCOIN",
    "BITCOIN",
    "algorand_profile",
    "comparison_rows",
    "dominates",
]
