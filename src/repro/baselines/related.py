"""Related-system reference points (paper section 2).

The paper positions Algorand against the BFT-cryptocurrency systems it
cites, using the numbers those papers report. We encode them as data so
the comparison table can be regenerated and extended:

* **Honey Badger** [40]: fixed 104-server committee, ~5 minute latency,
  ~200 KB/s ledger throughput at 10 MB batches — decentralization
  sacrificed for throughput.
* **ByzCoin** [33]: PoW-elected rotating committee (hybrid consensus),
  ~35 s latency, ~230 KB/s at 8 MB blocks, 1000 participants — but forks
  remain possible and the adversary model is only "mildly adaptive".
* **Bitcoin** [42]: ~3600 s to high confidence, ~1.7 KB/s.

Algorand's row is computed from measured/projected values so the table
stays honest to whatever scale the reproduction ran at.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SystemProfile:
    """One row of the section 2 comparison."""

    name: str
    latency_seconds: float
    throughput_bytes_per_sec: float
    participants: int
    decentralized: bool          # open membership (no fixed server set)
    forks_possible: bool
    adaptive_adversary: bool     # tolerates immediate targeted corruption


#: Reference points as reported by the cited papers.
HONEY_BADGER = SystemProfile(
    name="HoneyBadger", latency_seconds=300.0,
    throughput_bytes_per_sec=200_000.0, participants=104,
    decentralized=False, forks_possible=False, adaptive_adversary=False,
)

BYZCOIN = SystemProfile(
    name="ByzCoin", latency_seconds=35.0,
    throughput_bytes_per_sec=230_000.0, participants=1000,
    decentralized=True, forks_possible=True, adaptive_adversary=False,
)

BITCOIN = SystemProfile(
    name="Bitcoin", latency_seconds=3600.0,
    throughput_bytes_per_sec=6_000_000.0 / 3600.0, participants=1_000_000,
    decentralized=True, forks_possible=True, adaptive_adversary=True,
)


def algorand_profile(latency_seconds: float = 22.0,
                     throughput_bytes_per_sec: float = 750e6 / 3600.0,
                     participants: int = 500_000) -> SystemProfile:
    """Algorand's row (defaults: the paper's reported full-scale numbers)."""
    return SystemProfile(
        name="Algorand", latency_seconds=latency_seconds,
        throughput_bytes_per_sec=throughput_bytes_per_sec,
        participants=participants, decentralized=True,
        forks_possible=False, adaptive_adversary=True,
    )


def comparison_rows(algorand: SystemProfile | None = None
                    ) -> list[SystemProfile]:
    """All systems, ordered by confirmation latency."""
    rows = [BITCOIN, HONEY_BADGER, BYZCOIN,
            algorand if algorand is not None else algorand_profile()]
    return sorted(rows, key=lambda profile: profile.latency_seconds)


def dominates(a: SystemProfile, b: SystemProfile) -> bool:
    """True if ``a`` is at least as good as ``b`` on every axis and
    strictly better on at least one (latency and throughput compared
    numerically; booleans compared as desirability)."""
    at_least = (
        a.latency_seconds <= b.latency_seconds
        and a.throughput_bytes_per_sec >= b.throughput_bytes_per_sec
        and (a.decentralized or not b.decentralized)
        and (not a.forks_possible or b.forks_possible)
        and (a.adaptive_adversary or not b.adaptive_adversary)
    )
    strictly = (
        a.latency_seconds < b.latency_seconds
        or a.throughput_bytes_per_sec > b.throughput_bytes_per_sec
        or (a.decentralized and not b.decentralized)
        or (not a.forks_possible and b.forks_possible)
        or (a.adaptive_adversary and not b.adaptive_adversary)
    )
    return at_least and strictly
