"""One live node process: ``python -m repro.live.node_main <config.json>``.

Spawned by :class:`repro.live.cluster.LiveCluster`, one per node. The
process builds the exact stack the sim harness builds — keys, chain,
admission, damping, obs, conformance — but on a :class:`LiveClock` and
a :class:`LiveTransport`, then follows the control conversation in
:mod:`repro.live.control`: hello → peers → (dial/accept gossip links)
→ ready → start → run rounds → result.

Determinism across processes comes from construction, not luck: every
process derives the same keypairs and genesis from the shared seed, and
the payment schedule is replayed from the same seeded RNG stream in
every process with each node submitting only its own share.

Robustness plumbing (all dormant in a clean run):

* **Reconnect** — a lost gossip link is redialed by the pair's dialer
  (the higher index) with capped exponential backoff and a fresh
  ``peer-hello`` handshake.
* **Faults** — the ``start`` message may carry a scripted fault
  schedule; :class:`~repro.live.faults.LiveFaultPlane` arms it on this
  node's clock.
* **Rejoin** — a respawned process (``rejoin`` config flag) resumes its
  trace clock at ``clock_offset``, rebinds its original address, emits
  ``node_restarted``, and catches up over gossip
  (:class:`~repro.live.catchup.LiveChainSync`) before running rounds.
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

import numpy as np

from repro.chaos.scenario import FaultAction
from repro.common.encoding import decode, encode
from repro.common.params import ProtocolParams
from repro.conformance.monitor import ConformanceMonitor
from repro.crypto.backend import CachedBackend, FastBackend
from repro.crypto.hashing import H
from repro.ledger.blockchain import Blockchain
from repro.ledger.transaction import make_transaction
from repro.live.catchup import LiveChainSync
from repro.live.clock import LiveClock
from repro.live.control import ControlError, MessageStream, send_message
from repro.live.faults import LiveFaultPlane
from repro.live.transport import LiveTransport, PeerLink
from repro.network.wire import FrameDecoder, encode_block, encode_frame
from repro.node.agent import Node
from repro.node.registry import BlockRegistry
from repro.obs.bus import TraceBus
from repro.obs.sink import JsonlTraceSink
from repro.runtime.admission import AdmissionConfig, attach_admission
from repro.runtime.cache import VerificationCache
from repro.runtime.damping import attach_damping

#: Reconnect backoff: first retry delay and cap (seconds).
RECONNECT_BACKOFF_BASE = 0.25
RECONNECT_BACKOFF_CAP = 3.0


async def _read_hello(reader: asyncio.StreamReader
                      ) -> tuple[dict, list[bytes], bytes]:
    """First frame on a gossip connection identifies the peer.

    Returns ``(hello, extra_frames, residue)`` — any bytes the hello
    read pulled in beyond the hello itself are handed back so no early
    gossip frame is lost to the handshake.
    """
    decoder = FrameDecoder()
    while True:
        data = await reader.read(65536)
        if not data:
            raise ControlError("peer closed before hello")
        frames = decoder.feed(data)
        if frames:
            hello = decode(frames[0])
            if (not isinstance(hello, dict)
                    or hello.get("type") != "peer-hello"):
                raise ControlError(f"expected peer-hello, got {hello!r}")
            return hello, frames[1:], bytes(decoder._buffer)


class NodeProcess:
    """State machine for one live node."""

    def __init__(self, cfg: dict) -> None:
        self.cfg = cfg
        self.index: int = cfg["index"]
        self.num_nodes: int = cfg["num_nodes"]
        self.seed: int = cfg["seed"]
        self.params = ProtocolParams(**cfg["params"])
        self.rejoin: bool = bool(cfg.get("rejoin"))
        self.clock = LiveClock(tick=cfg.get("tick", 0.25))
        # A respawned process resumes protocol time where the kill left
        # it, so its trace timestamps merge monotonically with everyone
        # else's and scripted fault windows stay aligned.
        self.clock.now = float(cfg.get("clock_offset", 0.0))
        self.transport = LiveTransport(
            self.index, self.clock,
            drain_budget=cfg.get("drain_budget", 128),
            rx_queue_limit=cfg.get("rx_queue_limit", 4096),
            incarnation=int(cfg.get("incarnation", 0)))
        self.transport.on_link_down = self._ensure_redial
        self._links_complete = asyncio.Event()
        self._server: asyncio.base_events.Server | None = None
        self._peer_addresses: dict[int, object] = {}
        self._neighbors: set[int] = set()
        self._redial_tasks: dict[int, asyncio.Task] = {}

    # -- gossip link establishment --------------------------------------

    def _check_links(self) -> None:
        expected = len(self._neighbors) if self._neighbors \
            else self.num_nodes - 1
        if len(self.transport.links) >= expected:
            self._links_complete.set()

    async def _on_peer_connect(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        hello, extra, residue = await _read_hello(reader)
        peer = hello["index"]
        if peer in self.transport.severed:
            # Fault plane says this link does not exist right now.
            writer.close()
            return
        link = PeerLink(self.transport, peer, reader, writer)
        self.transport.add_link(link)
        link.start()
        for payload in extra:
            self.transport._on_payload(peer, payload)
        for payload in link.decoder.feed(residue):
            self.transport._on_payload(peer, payload)
        self._check_links()

    async def _listen(self) -> str | list:
        cfg = self.cfg
        if cfg["transport"] == "uds":
            path = str(Path(cfg["runtime_dir"])
                       / f"node-{self.index}.sock")
            # A respawn after SIGKILL finds its own stale socket file.
            Path(path).unlink(missing_ok=True)
            self._server = await asyncio.start_unix_server(
                self._on_peer_connect, path=path)
            return path
        port = cfg.get("rebind_port") or (
            (cfg["base_port"] + self.index) if cfg["base_port"] else 0)
        self._server = await asyncio.start_server(
            self._on_peer_connect, host=cfg["host"], port=port)
        bound_port = self._server.sockets[0].getsockname()[1]
        return [cfg["host"], bound_port]

    async def _dial_peer(self, peer: int, address) -> None:
        if self.cfg["transport"] == "uds":
            reader, writer = await asyncio.open_unix_connection(address)
        else:
            reader, writer = await asyncio.open_connection(
                address[0], address[1])
        writer.write(encode_frame(encode({"type": "peer-hello",
                                          "index": self.index})))
        await writer.drain()
        link = PeerLink(self.transport, peer, reader, writer)
        self.transport.add_link(link)
        link.start()
        self._check_links()

    def _ensure_redial(self, peer: int) -> None:
        """Re-establish a lost/healed link, if we are the pair's dialer.

        Connections are owned by the higher index of the pair (node *i*
        dials every *j < i* at startup); keeping that rule on reconnect
        means a healed partition or a restarted peer gets exactly one
        new connection, not a crossing pair.
        """
        if peer >= self.index or peer not in self._peer_addresses:
            return
        if self.transport.disconnected:
            return
        task = self._redial_tasks.get(peer)
        if task is not None and not task.done():
            return
        self._redial_tasks[peer] = asyncio.create_task(
            self._redial(peer), name=f"redial-{peer}")

    async def _redial(self, peer: int) -> None:
        backoff = RECONNECT_BACKOFF_BASE
        try:
            while not self.transport.disconnected:
                if peer in self.transport.severed:
                    await asyncio.sleep(RECONNECT_BACKOFF_BASE)
                    continue
                existing = self.transport.links.get(peer)
                if existing is not None and not existing.closed:
                    return
                self.transport.reconnect_attempts += 1
                try:
                    await asyncio.wait_for(
                        self._dial_peer(peer, self._peer_addresses[peer]),
                        timeout=2.0)
                except (OSError, asyncio.TimeoutError, ControlError):
                    await asyncio.sleep(backoff)
                    backoff = min(backoff * 2.0, RECONNECT_BACKOFF_CAP)
                    continue
                self.transport.reconnects += 1
                return
        finally:
            self._redial_tasks.pop(peer, None)

    # -- the protocol stack (mirrors the sim harness wiring) ------------

    def _build_node(self) -> Node:
        cfg = self.cfg
        inner = FastBackend()
        self.verification_cache = VerificationCache()
        backend = CachedBackend(inner, self.verification_cache)
        self.keypairs = [
            backend.keypair(H(b"user-key", encode([self.seed, i])))
            for i in range(self.num_nodes)
        ]
        genesis_seed = H(b"genesis", encode(self.seed))
        balances = cfg.get("balances")
        if balances is not None:
            initial_balances = {kp.public: int(balances[i])
                                for i, kp in enumerate(self.keypairs)}
        else:
            initial_balances = {kp.public: cfg["initial_balance"]
                                for kp in self.keypairs}
        chain = Blockchain(initial_balances, genesis_seed,
                           self.params.seed_refresh_interval)
        self.bus = TraceBus()
        self.bus.bind_clock(lambda: self.clock.now)
        self.transport.obs = self.bus
        # durable + line-buffered: a SIGKILL mid-run loses at most the
        # line being written, so the chaos coordinator can read a
        # victim's trace back after the kill.
        self.sink = JsonlTraceSink(cfg["trace"], buffer_lines=1,
                                   durable=True)
        self.bus.add_sink(self.sink)
        self.monitor = ConformanceMonitor(registry=self.bus.metrics)
        self.bus.add_sink(self.monitor)

        def harvest(bus: TraceBus) -> None:
            metrics = bus.metrics
            for name, value in self.transport.stats().items():
                metrics.set_gauge("live." + name, value)
            metrics.set_gauge("live.max_lag_s", self.clock.max_lag)
            metrics.set_gauge("simloop.events_processed",
                              self.clock.events_processed)
            metrics.set_gauge("simloop.now", self.clock.now)
            self.monitor.harvest(metrics)

        self.bus.add_harvester(harvest)
        node = Node(
            index=self.index, env=self.clock,
            keypair=self.keypairs[self.index], backend=backend,
            params=self.params, chain=chain, interface=self.transport,
            registry=BlockRegistry(), obs=self.bus,
        )
        index_of = {kp.public: i for i, kp in enumerate(self.keypairs)}
        if cfg.get("use_admission", True):
            attach_admission(node, AdmissionConfig(), directory=None,
                             index_of=index_of)
        if cfg.get("relay_damping", True):
            attach_damping(node)
        # Live catch-up: chainreq/chain handlers + the resync hook, and
        # patience after a ConsensusHalted — answers take wall time.
        self.chain_sync = LiveChainSync(
            node, self.clock, self.transport,
            check_interval=max(0.25, self.params.lambda_step / 2),
            serve_cooldown=self.params.lambda_step,
            request_cooldown=self.params.lambda_step,
            # One whole worst-case round without a commit == stalled.
            stall_after=(self.params.lambda_block
                         + self.params.max_steps * self.params.lambda_step))
        node.resync_patience = max(0.25, self.params.lambda_step / 2)
        node.resync_retries = int(cfg.get("resync_retries", 60))
        return node

    def _submit_payments(self, node: Node, count: int) -> None:
        """Replay the cluster-wide schedule; submit only our share.

        Every process draws the identical RNG stream, so the schedule
        (sender k % n, seeded recipient draw, per-sender nonces) is the
        same everywhere — the live analogue of the sim harness's
        ``submit_payments``. A rejoined process resubmits its share:
        already-committed transactions die at assembly against state,
        uncommitted ones get a second chance to gossip.
        """
        n = self.num_nodes
        rng = np.random.default_rng(self.seed)
        nonces: dict[int, int] = {}
        for k in range(count):
            sender_index = k % n
            recipient_index = int(rng.integers(n - 1))
            if recipient_index >= sender_index:
                recipient_index += 1
            nonce = nonces.get(sender_index, 0)
            nonces[sender_index] = nonce + 1
            if sender_index != self.index:
                continue
            keypair = self.keypairs[sender_index]
            tx = make_transaction(
                node.backend, keypair.secret, keypair.public,
                self.keypairs[recipient_index].public, 1, nonce)
            node.submit_transaction(tx)

    # -- main -----------------------------------------------------------

    async def run(self) -> None:
        cfg = self.cfg
        if cfg.get("exit_at_start"):
            # Test hook (fail-fast orchestration): die before hello.
            print(f"node {self.index}: exit_at_start requested",
                  file=sys.stderr, flush=True)
            raise SystemExit(17)
        timeout = cfg.get("connect_timeout", 30.0)
        address = await self._listen()
        if cfg["transport"] == "uds":
            reader, writer = await asyncio.open_unix_connection(
                cfg["control"])
        else:
            reader, writer = await asyncio.open_connection(
                cfg["control"][0], cfg["control"][1])
        control = MessageStream(reader)
        await send_message(writer, {"type": "hello", "index": self.index,
                                    "address": address})
        peers = await control.expect("peers", timeout=timeout)
        self._peer_addresses = {
            int(peer_key): peer_address
            for peer_key, peer_address in peers["addresses"].items()
            if int(peer_key) != self.index}
        neighbor_map = peers.get("neighbors") or {}
        self._neighbors = set(
            neighbor_map.get(str(self.index),
                             sorted(self._peer_addresses)))
        for peer in sorted(self._neighbors):
            if peer >= self.index:
                continue
            if self.rejoin:
                # Peers may themselves be mid-recovery: retry with
                # backoff instead of failing the whole rejoin.
                self._ensure_redial(peer)
            else:
                await self._dial_peer(peer, self._peer_addresses[peer])
        if self.num_nodes > 1 and not self.rejoin:
            await asyncio.wait_for(self._links_complete.wait(),
                                   timeout=timeout)
        node = self._build_node()
        self.fault_plane = LiveFaultPlane(
            self.index, self.num_nodes, self.clock, self.transport,
            self.seed)
        self.fault_plane.on_release = self._ensure_redial
        await send_message(writer, {"type": "ready", "index": self.index})
        start = await control.expect("start", timeout=timeout)
        rounds: int = start["rounds"]
        per_round = (self.params.lambda_block
                     + self.params.lambda_step * self.params.max_steps)
        deadline = start.get("deadline") or per_round * (rounds + 1)
        self.fault_plane.install(
            FaultAction.from_dict(record)
            for record in start.get("faults", ()))
        if self.rejoin:
            # Seed only the local conformance machine with the crash it
            # cannot have witnessed (the coordinator synthesizes the
            # real node_crashed into the merged trace at kill time);
            # without this, node_restarted from IDLE would be flagged.
            self.monitor.write_event({
                "kind": "node_crashed", "node": self.index,
                "round": node.chain.next_round, "t": self.clock.now})
            node.obs.emit("node_restarted", node=self.index,
                          round=node.chain.next_round)
            # Ask the network for the history we missed and give the
            # answer a moment to land before burning protocol timeouts
            # re-running an ancient round. The request repeats while we
            # wait: the first broadcast can race the redial tasks and
            # go out over zero established links.
            wait_until = self.clock.now + 6 * self.params.lambda_step

            def nag() -> None:
                if (self.chain_sync.pending is None
                        and self.clock.now < wait_until):
                    self.chain_sync.request()
                    self.clock.schedule(self.params.lambda_step, nag)

            nag()
            await self.clock.run_async(
                stop_when=lambda: (self.chain_sync.pending is not None
                                   or self.clock.now >= wait_until),
                deadline=deadline)
        if start["payments"]:
            self._submit_payments(node, start["payments"])
        process = node.start(rounds)
        await self.clock.run_async(stop_when=lambda: process.done,
                                   deadline=deadline)
        chain = node.chain
        blocks = [encode_block(chain.block_at(r))
                  for r in range(1, chain.height + 1)]
        verdict = self.monitor.verdict()
        await send_message(writer, {
            "type": "result",
            "index": self.index,
            "incarnation": int(cfg.get("incarnation", 0)),
            "height": chain.height,
            "tip": chain.tip_hash,
            "blocks": blocks,
            "halted": node.halted,
            "trace": cfg["trace"],
            "conformance_ok": verdict.ok,
            "conformance_violations": len(verdict.violations),
            "dropped_events": (self.bus.dropped_events
                               + self.sink.dropped),
            "stats": {key: int(value) for key, value
                      in self.transport.stats().items()},
        })
        # Linger: keep the clock pumping — and with it gossip dispatch
        # and chain serving — until the coordinator's ``stop`` releases
        # us. Without this, fast finishers exit the instant they reach
        # target height and a chaos victim rejoining later finds nobody
        # left to answer its catch-up requests.
        release = asyncio.Event()

        async def await_release() -> None:
            try:
                while True:
                    message = await control.next()
                    if message.get("type") == "stop":
                        break
            except ControlError:
                pass  # coordinator gone == released
            release.set()
            self.clock.kick()

        release_task = asyncio.create_task(await_release())
        try:
            await self.clock.run_async(stop_when=release.is_set,
                                       deadline=deadline + 60.0)
        except TimeoutError:
            pass  # orphaned well past the run budget: just exit
        release_task.cancel()
        self.bus.close()
        for task in list(self._redial_tasks.values()):
            task.cancel()
        await self.transport.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        print("usage: python -m repro.live.node_main <config.json>",
              file=sys.stderr)
        return 2
    cfg = json.loads(Path(argv[0]).read_text(encoding="utf-8"))
    asyncio.run(NodeProcess(cfg).run())
    return 0


if __name__ == "__main__":
    sys.exit(main())
