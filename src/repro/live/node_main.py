"""One live node process: ``python -m repro.live.node_main <config.json>``.

Spawned by :class:`repro.live.cluster.LiveCluster`, one per node. The
process builds the exact stack the sim harness builds — keys, chain,
admission, damping, obs, conformance — but on a :class:`LiveClock` and
a :class:`LiveTransport`, then follows the control conversation in
:mod:`repro.live.control`: hello → peers → (dial/accept gossip links)
→ ready → start → run rounds → result.

Determinism across processes comes from construction, not luck: every
process derives the same keypairs and genesis from the shared seed, and
the payment schedule is replayed from the same seeded RNG stream in
every process with each node submitting only its own share.
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

import numpy as np

from repro.common.encoding import decode, encode
from repro.common.params import ProtocolParams
from repro.conformance.monitor import ConformanceMonitor
from repro.crypto.backend import CachedBackend, FastBackend
from repro.crypto.hashing import H
from repro.ledger.blockchain import Blockchain
from repro.ledger.transaction import make_transaction
from repro.live.clock import LiveClock
from repro.live.control import ControlError, MessageStream, send_message
from repro.live.transport import LiveTransport, PeerLink
from repro.network.wire import FrameDecoder, encode_block, encode_frame
from repro.node.agent import Node
from repro.node.registry import BlockRegistry
from repro.obs.bus import TraceBus
from repro.obs.sink import JsonlTraceSink
from repro.runtime.admission import AdmissionConfig, attach_admission
from repro.runtime.cache import VerificationCache
from repro.runtime.damping import attach_damping


async def _read_hello(reader: asyncio.StreamReader
                      ) -> tuple[dict, list[bytes], bytes]:
    """First frame on a gossip connection identifies the peer.

    Returns ``(hello, extra_frames, residue)`` — any bytes the hello
    read pulled in beyond the hello itself are handed back so no early
    gossip frame is lost to the handshake.
    """
    decoder = FrameDecoder()
    while True:
        data = await reader.read(65536)
        if not data:
            raise ControlError("peer closed before hello")
        frames = decoder.feed(data)
        if frames:
            hello = decode(frames[0])
            if (not isinstance(hello, dict)
                    or hello.get("type") != "peer-hello"):
                raise ControlError(f"expected peer-hello, got {hello!r}")
            return hello, frames[1:], bytes(decoder._buffer)


class NodeProcess:
    """State machine for one live node."""

    def __init__(self, cfg: dict) -> None:
        self.cfg = cfg
        self.index: int = cfg["index"]
        self.num_nodes: int = cfg["num_nodes"]
        self.seed: int = cfg["seed"]
        self.params = ProtocolParams(**cfg["params"])
        self.clock = LiveClock(tick=cfg.get("tick", 0.25))
        self.transport = LiveTransport(
            self.index, self.clock,
            drain_budget=cfg.get("drain_budget", 128),
            rx_queue_limit=cfg.get("rx_queue_limit", 4096))
        self._links_complete = asyncio.Event()
        self._server: asyncio.base_events.Server | None = None

    # -- gossip link establishment --------------------------------------

    def _check_links(self) -> None:
        if len(self.transport.links) >= self.num_nodes - 1:
            self._links_complete.set()

    async def _on_peer_connect(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        hello, extra, residue = await _read_hello(reader)
        peer = hello["index"]
        link = PeerLink(self.transport, peer, reader, writer)
        self.transport.add_link(link)
        link.start()
        for payload in extra:
            self.transport._on_payload(peer, payload)
        for payload in link.decoder.feed(residue):
            self.transport._on_payload(peer, payload)
        self._check_links()

    async def _listen(self) -> str | list:
        cfg = self.cfg
        if cfg["transport"] == "uds":
            path = str(Path(cfg["runtime_dir"])
                       / f"node-{self.index}.sock")
            self._server = await asyncio.start_unix_server(
                self._on_peer_connect, path=path)
            return path
        port = (cfg["base_port"] + self.index) if cfg["base_port"] else 0
        self._server = await asyncio.start_server(
            self._on_peer_connect, host=cfg["host"], port=port)
        bound_port = self._server.sockets[0].getsockname()[1]
        return [cfg["host"], bound_port]

    async def _dial_peer(self, peer: int, address) -> None:
        if self.cfg["transport"] == "uds":
            reader, writer = await asyncio.open_unix_connection(address)
        else:
            reader, writer = await asyncio.open_connection(
                address[0], address[1])
        writer.write(encode_frame(encode({"type": "peer-hello",
                                          "index": self.index})))
        await writer.drain()
        link = PeerLink(self.transport, peer, reader, writer)
        self.transport.add_link(link)
        link.start()
        self._check_links()

    # -- the protocol stack (mirrors the sim harness wiring) ------------

    def _build_node(self) -> Node:
        cfg = self.cfg
        inner = FastBackend()
        self.verification_cache = VerificationCache()
        backend = CachedBackend(inner, self.verification_cache)
        self.keypairs = [
            backend.keypair(H(b"user-key", encode([self.seed, i])))
            for i in range(self.num_nodes)
        ]
        genesis_seed = H(b"genesis", encode(self.seed))
        initial_balances = {kp.public: cfg["initial_balance"]
                            for kp in self.keypairs}
        chain = Blockchain(initial_balances, genesis_seed,
                           self.params.seed_refresh_interval)
        self.bus = TraceBus()
        self.bus.bind_clock(lambda: self.clock.now)
        self.transport.obs = self.bus
        self.sink = JsonlTraceSink(cfg["trace"])
        self.bus.add_sink(self.sink)
        self.monitor = ConformanceMonitor(registry=self.bus.metrics)
        self.bus.add_sink(self.monitor)

        def harvest(bus: TraceBus) -> None:
            metrics = bus.metrics
            for name, value in self.transport.stats().items():
                metrics.set_gauge("live." + name, value)
            metrics.set_gauge("live.max_lag_s", self.clock.max_lag)
            metrics.set_gauge("simloop.events_processed",
                              self.clock.events_processed)
            metrics.set_gauge("simloop.now", self.clock.now)
            self.monitor.harvest(metrics)

        self.bus.add_harvester(harvest)
        node = Node(
            index=self.index, env=self.clock,
            keypair=self.keypairs[self.index], backend=backend,
            params=self.params, chain=chain, interface=self.transport,
            registry=BlockRegistry(), obs=self.bus,
        )
        index_of = {kp.public: i for i, kp in enumerate(self.keypairs)}
        if cfg.get("use_admission", True):
            attach_admission(node, AdmissionConfig(), directory=None,
                             index_of=index_of)
        if cfg.get("relay_damping", True):
            attach_damping(node)
        return node

    def _submit_payments(self, node: Node, count: int) -> None:
        """Replay the cluster-wide schedule; submit only our share.

        Every process draws the identical RNG stream, so the schedule
        (sender k % n, seeded recipient draw, per-sender nonces) is the
        same everywhere — the live analogue of the sim harness's
        ``submit_payments``.
        """
        n = self.num_nodes
        rng = np.random.default_rng(self.seed)
        nonces: dict[int, int] = {}
        for k in range(count):
            sender_index = k % n
            recipient_index = int(rng.integers(n - 1))
            if recipient_index >= sender_index:
                recipient_index += 1
            nonce = nonces.get(sender_index, 0)
            nonces[sender_index] = nonce + 1
            if sender_index != self.index:
                continue
            keypair = self.keypairs[sender_index]
            tx = make_transaction(
                node.backend, keypair.secret, keypair.public,
                self.keypairs[recipient_index].public, 1, nonce)
            node.submit_transaction(tx)

    # -- main -----------------------------------------------------------

    async def run(self) -> None:
        cfg = self.cfg
        timeout = cfg.get("connect_timeout", 30.0)
        address = await self._listen()
        if cfg["transport"] == "uds":
            reader, writer = await asyncio.open_unix_connection(
                cfg["control"])
        else:
            reader, writer = await asyncio.open_connection(
                cfg["control"][0], cfg["control"][1])
        control = MessageStream(reader)
        await send_message(writer, {"type": "hello", "index": self.index,
                                    "address": address})
        peers = await control.expect("peers", timeout=timeout)
        for peer_key, peer_address in peers["addresses"].items():
            peer = int(peer_key)
            if peer < self.index:
                await self._dial_peer(peer, peer_address)
        if self.num_nodes > 1:
            await asyncio.wait_for(self._links_complete.wait(),
                                   timeout=timeout)
        node = self._build_node()
        await send_message(writer, {"type": "ready", "index": self.index})
        start = await control.expect("start", timeout=timeout)
        rounds: int = start["rounds"]
        if start["payments"]:
            self._submit_payments(node, start["payments"])
        process = node.start(rounds)
        per_round = (self.params.lambda_block
                     + self.params.lambda_step * self.params.max_steps)
        deadline = start.get("deadline") or per_round * (rounds + 1)
        await self.clock.run_async(stop_when=lambda: process.done,
                                   deadline=deadline)
        chain = node.chain
        blocks = [encode_block(chain.block_at(r))
                  for r in range(1, chain.height + 1)]
        verdict = self.monitor.verdict()
        self.bus.close()
        await send_message(writer, {
            "type": "result",
            "index": self.index,
            "height": chain.height,
            "tip": chain.tip_hash,
            "blocks": blocks,
            "halted": node.halted,
            "trace": cfg["trace"],
            "conformance_ok": verdict.ok,
            "conformance_violations": len(verdict.violations),
            "dropped_events": (self.bus.dropped_events
                               + self.sink.dropped),
            "stats": {key: int(value) for key, value
                      in self.transport.stats().items()},
        })
        await self.transport.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        print("usage: python -m repro.live.node_main <config.json>",
              file=sys.stderr)
        return 2
    cfg = json.loads(Path(argv[0]).read_text(encoding="utf-8"))
    asyncio.run(NodeProcess(cfg).run())
    return 0


if __name__ == "__main__":
    sys.exit(main())
