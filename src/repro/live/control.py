"""Coordinator <-> node control protocol.

Control messages are canonically-encoded dicts
(:mod:`repro.common.encoding`) in the same length-prefixed frames the
gossip links use, so one framing implementation serves both planes.
The conversation is deliberately tiny:

===========  =========  ==========================================
message      direction  meaning
===========  =========  ==========================================
``hello``    node → co  node is up; carries its listen address
``peers``    co → node  full address map; start dialing
``ready``    node → co  all gossip links established
``start``    co → node  begin: payment count + target rounds
``result``   node → co  final chain (block bytes), trace, stats
``stop``     co → node  all results in; stop serving and exit
===========  =========  ==========================================

After ``result`` a node *lingers* — clock running, gossip links open,
catch-up requests still answered — until ``stop`` (or control EOF)
releases it. Fast finishers therefore stay useful to a chaos victim
that rejoins after everyone else has already reached target height.
"""

from __future__ import annotations

import asyncio

from repro.common.encoding import decode, encode
from repro.network.wire import FrameDecoder, WireError, encode_frame


class ControlError(WireError):
    """The control conversation broke (bad frame, early EOF)."""


async def send_message(writer: asyncio.StreamWriter, message: dict) -> None:
    writer.write(encode_frame(encode(message)))
    await writer.drain()


class MessageStream:
    """Framed dict messages over one stream connection."""

    def __init__(self, reader: asyncio.StreamReader) -> None:
        self.reader = reader
        self._decoder = FrameDecoder()
        self._pending: list[dict] = []

    async def next(self, timeout: float | None = None) -> dict:
        """The next control message; :class:`ControlError` on EOF."""
        while not self._pending:
            try:
                data = await asyncio.wait_for(self.reader.read(65536),
                                              timeout=timeout)
            except TimeoutError as exc:
                raise ControlError(
                    f"control peer silent for {timeout}s") from exc
            if not data:
                raise ControlError("control connection closed")
            for payload in self._decoder.feed(data):
                message = decode(payload)
                if not isinstance(message, dict) or "type" not in message:
                    raise ControlError(
                        f"malformed control message: {message!r}")
                self._pending.append(message)
        return self._pending.pop(0)

    async def expect(self, kind: str, timeout: float | None = None) -> dict:
        message = await self.next(timeout=timeout)
        if message["type"] != kind:
            raise ControlError(
                f"expected control message {kind!r}, "
                f"got {message['type']!r}")
        return message
