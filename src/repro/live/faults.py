"""Scripted fault injection on the live transport's peer links.

The sim's :class:`repro.chaos.faults.FaultInjector` compiles a
:class:`~repro.chaos.scenario.ScenarioScript` onto the virtual clock's
link shaper. This module is the same compilation targeted at one **real
node process**: every node receives the full fault schedule in its
``start`` control message and installs a :class:`LiveFaultPlane` that
arms each window on its own :class:`~repro.live.clock.LiveClock` — so
both endpoints of a partitioned link cut (and later release) each other
at the same wall-clock offsets without any runtime coordination.

Fault kinds map onto link mechanics, not models:

* ``partition`` / ``dos`` — :meth:`LiveTransport.sever_peer`: the TCP/UDS
  connection is closed, new handshakes are refused, inbound frames
  already in flight are dropped. Healing releases the sever and the
  backoff dialer re-establishes the link.
* ``loss`` — sender-side probabilistic frame drop in ``_send_frames``,
  seeded per node (``[seed, FAULT_RNG_TAG, index]``) so the drop pattern
  is reproducible for a fixed schedule.
* ``delay`` — the writer queue's flush stalls by ``extra_delay`` per
  frame (head-of-line, like real congestion).
* ``crash`` — **not handled here**: the coordinator owns SIGKILL and
  respawn; a dead process cannot schedule its own murder.

``duplicate``/``reorder``/``flood``/``spam`` stay sim-only (they model
fabric or adversary behavior that has no faithful single-link analog
here); :func:`unsupported_live_kinds` lets callers fail loudly up front.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.chaos.faults import _FAULT_RNG_TAG as FAULT_RNG_TAG
from repro.chaos.scenario import FaultAction
from repro.live.clock import LiveClock
from repro.live.transport import LiveTransport

#: Fault kinds the live plane can realize on real links/processes.
LIVE_FAULT_KINDS = frozenset({"partition", "loss", "delay", "crash", "dos"})


def unsupported_live_kinds(actions: Iterable[FaultAction]) -> set[str]:
    """Fault kinds in ``actions`` with no live realization."""
    return {action.kind for action in actions} - LIVE_FAULT_KINDS


class LiveFaultPlane:
    """Per-node realization of a scenario's link faults on wall windows.

    Install once (before the clock starts running protocol time) with
    the scripted actions; the plane schedules activate/deactivate
    callbacks relative to ``clock.now`` — a respawned node whose clock
    resumes at its kill offset therefore skips windows that already
    ended and clips ones it rejoined in the middle of.
    """

    def __init__(self, index: int, num_nodes: int, clock: LiveClock,
                 transport: LiveTransport, seed: int) -> None:
        self.index = index
        self.num_nodes = num_nodes
        self.clock = clock
        self.transport = transport
        self.rng = np.random.default_rng([seed, FAULT_RNG_TAG, index])
        #: Active loss effects: ``(nodes, rate)`` — ``nodes`` empty means
        #: every link (matching the sim's ``_matches`` semantics).
        self._loss: list[tuple[frozenset[int], float]] = []
        #: Active delay effects: ``(nodes, extra_delay)``.
        self._delay: list[tuple[frozenset[int], float]] = []
        self.dropped_frames = 0
        self.delayed_frames = 0
        #: Called with each peer index released from a sever, so the
        #: owner can kick its reconnect loop immediately.
        self.on_release = None
        transport.fault_plane = self

    # -- installation ----------------------------------------------------

    def install(self, actions: Iterable[FaultAction]) -> None:
        for action in actions:
            if action.kind == "crash":
                continue  # coordinator-owned: SIGKILL + respawn
            if action.kind not in LIVE_FAULT_KINDS:
                raise ValueError(
                    f"fault kind {action.kind!r} has no live realization")
            now = self.clock.now
            end = action.end
            if end is not None and end <= now:
                continue  # window fully in the past (rejoined after it)
            start_delay = max(0.0, action.start - now)
            if action.kind in ("partition", "dos"):
                peers = self._severed_peers(action)
                if not peers:
                    continue
                self.clock.schedule(
                    start_delay, lambda p=peers: self._sever(p))
                if end is not None:
                    self.clock.schedule(
                        max(0.0, end - now), lambda p=peers: self._release(p))
            elif action.kind == "loss":
                effect = (frozenset(action.nodes), action.rate)
                self.clock.schedule(
                    start_delay, lambda e=effect: self._loss.append(e))
                if end is not None:
                    self.clock.schedule(
                        max(0.0, end - now),
                        lambda e=effect: self._loss.remove(e))
            elif action.kind == "delay":
                effect = (frozenset(action.nodes), action.extra_delay)
                self.clock.schedule(
                    start_delay, lambda e=effect: self._delay.append(e))
                if end is not None:
                    self.clock.schedule(
                        max(0.0, end - now),
                        lambda e=effect: self._delay.remove(e))

    def _severed_peers(self, action: FaultAction) -> frozenset[int]:
        """Which peers this node must cut for one partition/DoS window."""
        if action.kind == "dos":
            # Mirror the sim: only the DoSed target goes deaf and mute;
            # other nodes keep their (now useless) links up.
            if self.index in action.nodes:
                return frozenset(range(self.num_nodes)) - {self.index}
            return frozenset()
        # Partition: mirror the sim Partitioner — listed groups are
        # islands, all unlisted nodes share one implicit extra island.
        my_group = -1
        for group_index, group in enumerate(action.groups):
            if self.index in group:
                my_group = group_index
        peers = set()
        for peer in range(self.num_nodes):
            if peer == self.index:
                continue
            peer_group = -1
            for group_index, group in enumerate(action.groups):
                if peer in group:
                    peer_group = group_index
            if peer_group != my_group:
                peers.add(peer)
        return frozenset(peers)

    # -- window transitions ----------------------------------------------

    def _sever(self, peers: frozenset[int]) -> None:
        for peer in peers:
            self.transport.sever_peer(peer)

    def _release(self, peers: frozenset[int]) -> None:
        for peer in peers:
            self.transport.release_peer(peer)
            if self.on_release is not None:
                self.on_release(peer)

    # -- per-frame hooks (called from the transport's send path) ---------

    def _matches(self, nodes: frozenset[int], peer: int) -> bool:
        return not nodes or self.index in nodes or peer in nodes

    def outbound_drop(self, peer: int) -> bool:
        for nodes, rate in self._loss:
            if self._matches(nodes, peer) and self.rng.random() < rate:
                self.dropped_frames += 1
                return True
        return False

    def outbound_delay(self, peer: int) -> float:
        return sum(extra for nodes, extra in self._delay
                   if self._matches(nodes, peer))
