"""Run a local live cluster from the command line.

Usage::

    python -m repro.live --nodes 5 --rounds 3 --payments 20 \
        --transport uds --seed 7 --out /tmp/live-run

Spawns N real node processes, runs R rounds of BA*, prints the cluster
summary, and exits 0 only if every process committed a byte-identical
chain of the requested height. The merged JSONL trace (for
``python -m repro.conformance``) and all per-node artifacts land in the
``--out`` directory (a temp dir by default).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.live.cluster import LiveCluster, default_live_config


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live",
        description="Run BA* rounds on a live cluster of node processes.")
    parser.add_argument("--nodes", type=int, default=5,
                        help="node processes to spawn (default 5)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="rounds to commit (default 3)")
    parser.add_argument("--payments", type=int, default=20,
                        help="payments in the shared schedule (default 20)")
    parser.add_argument("--transport", choices=("uds", "tcp"),
                        default="uds",
                        help="gossip + control transport (default uds)")
    parser.add_argument("--seed", type=int, default=7,
                        help="shared determinism seed (default 7)")
    parser.add_argument("--out", default=None,
                        help="runtime directory (default: fresh temp dir)")
    parser.add_argument("--time-limit", type=float, default=None,
                        help="wall-clock budget in seconds (default: "
                             "derived from protocol timeouts)")
    parser.add_argument("--json", action="store_true",
                        help="print the summary as JSON")
    args = parser.parse_args(argv)

    config = default_live_config(args.nodes, seed=args.seed,
                                 transport=args.transport,
                                 runtime_dir=args.out)
    cluster = LiveCluster(config)
    cluster.submit_payments(args.payments)
    cluster.run_rounds(args.rounds, time_limit=args.time_limit)

    summary = cluster.summary()
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"live cluster: {summary['nodes']} nodes over "
              f"{summary['transport']}, {summary['rounds']} round(s), "
              f"{summary['payments']} payment(s)")
        print(f"  heights: {summary['heights']}")
        print(f"  tips:    {summary['tips']}")
        print(f"  chains equal: {summary['chains_equal']}   "
              f"conformance ok: {summary['conformance_ok']} "
              f"({summary['conformance_violations']} violation(s))")
        print(f"  wire bytes sent: {summary['wire_bytes_sent']}   "
              f"messages: {summary['messages_sent']}   "
              f"rx dropped: {summary['rx_dropped']}")
        print(f"  merged trace: {summary['merged_trace']}")
        print(f"  artifacts:    {summary['runtime_dir']}")

    complete = all(height >= args.rounds
                   for height in summary["heights"].values())
    if not (summary["chains_equal"] and complete):
        print("FAIL: cluster did not commit identical chains",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
