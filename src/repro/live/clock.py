"""Wall-clock pacing for the discrete-event kernel.

:class:`LiveClock` subclasses :class:`repro.sim.loop.Environment` so
every waitable the protocol layers use — ``timeout``, ``event``,
``signal``, ``any_of``, ``process`` — keeps its exact semantics and
``(time, seq)`` ordering. The only change is *when* timers fire:
:meth:`run_async` pops the same merged heap/immediate streams, but a
timer due in the future makes the coroutine actually sleep (interrupted
early by :meth:`kick` when a socket delivers work) instead of jumping
the clock forward. ``now`` is wall-clock seconds since the run started,
so ``lambda_priority = 0.25`` means a quarter of a real second.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Callable

from repro.sim.loop import Environment


class LiveClock(Environment):
    """The event kernel, paced against ``asyncio``'s wall clock."""

    def __init__(self, tick: float = 0.25) -> None:
        super().__init__()
        #: Longest uninterrupted sleep; bounds how stale a ``stop_when``
        #: or deadline check can get while the queues are idle.
        self.tick = tick
        self._wake: asyncio.Event | None = None
        #: Worst lateness observed between a timer's due time and the
        #: wall instant it actually fired (scheduling jitter + callback
        #: backlog) — the live analogue of sim determinism checks.
        self.max_lag = 0.0

    def kick(self) -> None:
        """Wake :meth:`run_async` early — new work arrived off-loop.

        Called by the transport when a socket reader enqueues envelopes
        (and schedules their drain); without the kick the loop would
        finish its current sleep first, adding up to ``tick`` seconds
        of delivery latency.
        """
        if self._wake is not None:
            self._wake.set()

    async def _sleep(self, duration: float) -> None:
        if duration <= 0:
            await asyncio.sleep(0)
            return
        assert self._wake is not None
        try:
            await asyncio.wait_for(self._wake.wait(), timeout=duration)
        except TimeoutError:
            return
        self._wake.clear()

    async def run_async(self, stop_when: Callable[[], bool] | None = None,
                        deadline: float | None = None) -> None:
        """Drive the timer queues in real time until ``stop_when``.

        Mirrors :meth:`Environment.run`: same merge of the heap and
        immediate streams, same failure propagation on every exit path.
        ``deadline`` is in clock seconds (``now``); exceeding it raises
        :class:`TimeoutError` — a live run that overruns its budget is
        a failure, not a longer wait. Unlike the sim loop, empty queues
        do not end the run (sockets may refill them); only ``stop_when``
        or the deadline do, so every call must pass ``stop_when``.
        """
        if stop_when is None:
            raise ValueError("run_async requires stop_when (live queues "
                             "refill from sockets; drained != done)")
        loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        origin = loop.time() - self.now
        heap = self._heap
        immediate = self._immediate
        heappop = heapq.heappop
        try:
            while True:
                self._raise_if_failed()
                if stop_when():
                    return
                wall = loop.time() - origin
                if deadline is not None and wall >= deadline:
                    raise TimeoutError(
                        f"live run exceeded its {deadline:.1f}s deadline "
                        f"(now={self.now:.1f})")
                while heap and heap[0][2].cancelled:
                    heappop(heap)
                while immediate and immediate[0].cancelled:
                    immediate.popleft()
                if not heap and not immediate:
                    await self._sleep(self.tick)
                    continue
                # Exact (time, seq) merge, as in Environment.run.
                from_immediate = bool(immediate) and (
                    not heap
                    or (immediate[0].time, immediate[0].seq) < heap[0][:2])
                timer = immediate[0] if from_immediate else heap[0][2]
                if timer.time > wall:
                    await self._sleep(min(timer.time - wall, self.tick))
                    continue
                if from_immediate:
                    immediate.popleft()
                    self.immediates_processed += 1
                else:
                    heappop(heap)
                lag = wall - timer.time
                if lag > self.max_lag:
                    self.max_lag = lag
                # Monotone wall time; never rewound to timer.time, so a
                # late timer's callback still sees honest elapsed time.
                if wall > self.now:
                    self.now = wall
                timer.callback()
                self.events_processed += 1
                # Yield between callbacks so socket reader/writer tasks
                # interleave with protocol work instead of starving.
                await asyncio.sleep(0)
        finally:
            self._wake = None
