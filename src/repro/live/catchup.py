"""Live block catch-up: section 8.3 over real sockets.

The sim's :func:`repro.node.catchup.resync_from_peers` reads peer
``Node`` objects directly — a luxury a real process does not have. This
module ports the same certificate-verified replay onto the live
transport as a request/response pair of gossip kinds:

* ``"chainreq"`` (:class:`~repro.node.catchup.ChainRequest`) — a node
  that believes it has fallen behind floods its height; requests relay,
  so a helper beyond the requester's direct neighbors still hears it on
  a partial mesh.
* ``"chain"`` (:class:`~repro.node.catchup.ChainAnnouncement`) — any
  peer strictly ahead answers with its full history + certificates
  (throttled). The receiver replays it from genesis
  (:func:`~repro.node.catchup.replay_chain`, every certificate checked)
  and **stashes** the validated replica; the round loop adopts it at the
  next boundary or ConsensusHalted via the standard ``node.resync``
  hook, so the reference machine sees a legal ``catchup_adopted``.

Falling behind is detected three ways: an explicit :meth:`request` at
rejoin, a periodic lag probe watching the vote buffer for rounds two or
more ahead of our own (pipelining legitimately runs one round ahead),
and a stall detector in the same probe — a node whose height has not
moved for ``stall_after`` seconds starts requesting outright, which
covers the case where every peer is already done (no fresh votes to
betray the lag) and the ConsensusHalted patience loop is polling an
empty stash.

This also removes the per-process block-registry limitation: a node
that never saw a committed block over gossip (killed, partitioned,
partial mesh) now fetches the canonical history instead of needing a
shared registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import InvalidCertificate, LedgerError
from repro.ledger.blockchain import Blockchain
from repro.live.clock import LiveClock
from repro.live.transport import LiveTransport
from repro.network.message import Envelope
from repro.node.catchup import (
    ChainAnnouncement,
    ChainRequest,
    build_announcement,
    replay_chain,
)
from repro.node.recovery import RECOVERY_ROUND_BASE

if TYPE_CHECKING:
    from repro.node.agent import Node


class LiveChainSync:
    """Request/response catch-up bound to one live node."""

    def __init__(self, node: "Node", clock: LiveClock,
                 transport: LiveTransport, *,
                 check_interval: float = 0.5,
                 serve_cooldown: float = 1.0,
                 request_cooldown: float = 1.0,
                 stall_after: float = 10.0) -> None:
        self.node = node
        self.clock = clock
        self.transport = transport
        self.check_interval = check_interval
        self.serve_cooldown = serve_cooldown
        self.request_cooldown = request_cooldown
        self.stall_after = stall_after
        self._last_height = node.chain.height
        self._last_progress = clock.now
        #: Validated, strictly-longer replica awaiting adoption at the
        #: next round boundary (or ConsensusHalted retry).
        self.pending: Blockchain | None = None
        self.served = 0
        self.adopted = 0
        self.rejected = 0
        self.requests_sent = 0
        self._last_serve = float("-inf")
        self._last_request = float("-inf")
        node.router.register("chain", self._on_announcement)
        node.router.register("chainreq", self._on_request)
        node.resync = self.take_pending
        transport.chain_sync = self
        self.clock.schedule(self.check_interval, self._lag_probe)

    # -- requesting ------------------------------------------------------

    def request(self) -> None:
        """Flood a catch-up request (throttled)."""
        now = self.clock.now
        if now - self._last_request < self.request_cooldown:
            return
        self._last_request = now
        request = ChainRequest(height=self.node.chain.height)
        self.transport.broadcast(Envelope(
            origin=self.node.keypair.public, kind="chainreq",
            payload=request, size=request.size))
        self.requests_sent += 1

    def _lag_probe(self) -> None:
        """Buffered votes from rounds well ahead of ours mean we lag.

        A flat height for ``stall_after`` seconds also triggers a
        request: a node severed long enough sees no votes at all once
        its peers have finished their rounds, so buffered-vote evidence
        alone would never fire. Peers at the same height simply ignore
        the request, so a fully-caught-up cluster only pays a trickle
        of control traffic.
        """
        if not self.transport.disconnected:
            height = self.node.chain.height
            if height != self._last_height:
                self._last_height = height
                self._last_progress = self.clock.now
            ahead = max(
                (round_number
                 for round_number in self.node.buffer.rounds_buffered()
                 if round_number < RECOVERY_ROUND_BASE),
                default=0)
            stalled = (self.clock.now - self._last_progress
                       >= self.stall_after)
            if ahead >= self.node.chain.next_round + 2 or stalled:
                self.request()
            self.clock.schedule(self.check_interval, self._lag_probe)

    # -- serving ---------------------------------------------------------

    def _on_request(self, request: ChainRequest) -> bool:
        if self.node.chain.height > request.height:
            now = self.clock.now
            if now - self._last_serve >= self.serve_cooldown:
                self._last_serve = now
                self.announce()
        return True  # relay: helpers beyond our neighbors may be longer

    def announce(self) -> None:
        """Broadcast this node's chain for lagging peers to replay."""
        announcement = build_announcement(self.node.chain)
        self.transport.broadcast(Envelope(
            origin=self.node.keypair.public, kind="chain",
            payload=announcement, size=announcement.size))
        self.served += 1

    # -- receiving -------------------------------------------------------

    def _on_announcement(self, announcement: ChainAnnouncement) -> bool:
        node = self.node
        if announcement.length <= node.chain.height:
            # Nothing to learn; relay only a history whose tip matches
            # our own block at that height (validate-before-relay made
            # cheap by hash chaining) — same rule as the sim ChainSync.
            return bool(
                announcement.blocks
                and (announcement.blocks[-1].block_hash
                     == node.chain.block_at(announcement.length).block_hash)
            )
        if (self.pending is not None
                and announcement.length <= self.pending.height):
            return True  # already holding something at least as long
        try:
            replayed = replay_chain(
                announcement.blocks, announcement.certificates,
                initial_balances=node.chain.initial_balances,
                genesis_seed=node.chain.genesis_seed,
                params=node.params, backend=node.backend,
            )
        except (InvalidCertificate, LedgerError):
            self.rejected += 1
            return False  # never relay a history that failed validation
        self.pending = replayed
        return True

    def take_pending(self) -> Blockchain | None:
        """``node.resync`` hook: hand over the stashed replica, if longer."""
        replica = self.pending
        self.pending = None
        if replica is not None and replica.height > self.node.chain.height:
            self.adopted += 1
            return replica
        return None
