"""Coordinator harness for a live cluster of node processes.

:class:`LiveCluster` mirrors :class:`repro.experiments.harness.Simulation`
for the live substrate: build it from a :class:`SimulationConfig` whose
``substrate.kind`` is ``"live"``, queue payments, call
:meth:`run_rounds`, then read ``chains`` / :meth:`all_chains_equal` /
:meth:`summary` — same verbs, real processes underneath.

The coordinator owns a control socket (Unix domain or TCP, matching the
gossip transport), spawns one ``python -m repro.live.node_main`` process
per node, and walks the conversation in :mod:`repro.live.control`:
collect ``hello`` (listen addresses), broadcast ``peers`` (address map
plus the gossip neighbor lists — a partial mesh when
``network.peers_per_node < n - 1``), await ``ready`` from everyone,
broadcast ``start``, then await ``result`` messages carrying each
node's chain as encoded block bytes plus its trace path and transport
stats. Per-node JSONL traces are merged into one time-sorted file
suitable for ``python -m repro.conformance``.

Chaos extensions (all inert when ``faults`` is empty):

* Link faults (``partition``/``loss``/``delay``/``dos``) ride inside
  the ``start`` message; every node arms its own
  :class:`~repro.live.faults.LiveFaultPlane` against the shared
  schedule, so both ends of a cut link act at the same offsets.
* ``crash`` faults are realized here: the coordinator SIGKILLs the
  victim's process at the window start and — if the window has an end —
  respawns it as a fresh ``node_main`` with ``rejoin=True`` and a
  ``clock_offset`` resuming scenario time, then re-admits it through
  the same hello/peers/ready/start conversation. The victim rebuilds
  its chain over gossip (:mod:`repro.live.catchup`).
* Trace merging stitches every incarnation together and synthesizes
  the events a SIGKILLed process cannot write for itself —
  ``step_exit`` closures for steps open at the kill, ``node_crashed``
  at the measured kill time, and one ``fault_applied``/``fault_cleared``
  pair per scripted action (the shape the sim injector emits) — so the
  merged trace replays cleanly through the conformance machine.

Any node process that dies when it is not scripted to — including
before its first ``hello`` — aborts the whole run immediately with the
tail of every node log attached (fail-fast, not a 30s timeout).

Every per-node artifact (configs, logs, traces, sockets, merged trace)
lives under one runtime directory so a failed run leaves a complete
post-mortem behind.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import os
import sys
import tempfile
from pathlib import Path
from typing import Sequence

from repro.chaos.scenario import FaultAction
from repro.common.params import TEST_PARAMS, ProtocolParams
from repro.experiments.config import ConfigError, SimulationConfig, SubstrateConfig
from repro.live.control import ControlError, MessageStream, send_message
from repro.live.faults import unsupported_live_kinds
from repro.network.wire import decode_block
from repro.obs.sink import read_trace

#: TEST_PARAMS with all protocol timeouts shrunk 4x: in live mode the
#: lambdas are *wall-clock seconds*, and a smoke cluster on loopback
#: needs milliseconds, not the sim's calibrated WAN allowances. Committee
#: sizes are untouched, so the 5-node x initial_balance=40 design point
#: (W = 200) carries over from the sim test fixture.
LIVE_SMOKE_PARAMS = dataclasses.replace(
    TEST_PARAMS,
    lambda_priority=0.25,
    lambda_block=1.5,
    lambda_step=0.75,
    lambda_stepvar=0.25,
)

_LOG_TAIL_LINES = 25

#: Wall seconds a watcher waits after an un-scripted process exit for
#: the in-flight ``result`` to land before declaring the run broken.
_EXIT_GRACE = 2.0


def default_live_config(num_nodes: int = 5, *, seed: int = 7,
                        transport: str = "uds",
                        runtime_dir: str | None = None) -> SimulationConfig:
    """A ready-to-run live cluster config (smoke-test scale)."""
    return SimulationConfig(
        num_users=num_nodes,
        params=LIVE_SMOKE_PARAMS,
        seed=seed,
        initial_balance=40,
        substrate=SubstrateConfig(kind="live", transport=transport,
                                  runtime_dir=runtime_dir),
    )


def neighbor_map(num_nodes: int, peers_per_node: int) -> dict[str, list[int]]:
    """Deterministic symmetric gossip topology from the network config.

    ``peers_per_node >= n - 1`` is the full mesh (the historical live
    default). Anything smaller becomes a ring with chords: node *i*
    links to ``i +- k (mod n)`` for ``k = 1 .. ceil(p / 2)`` — always
    connected, symmetric by construction, degree ``2 * ceil(p / 2)``.
    """
    n = num_nodes
    if peers_per_node >= n - 1 or n <= 2:
        return {str(i): [j for j in range(n) if j != i] for i in range(n)}
    reach = max(1, (min(peers_per_node, n - 2) + 1) // 2)
    out: dict[str, list[int]] = {}
    for i in range(n):
        peers = set()
        for k in range(1, reach + 1):
            peers.add((i + k) % n)
            peers.add((i - k) % n)
        peers.discard(i)
        out[str(i)] = sorted(peers)
    return out


class LiveCluster:
    """N node processes + this coordinator, driven like a Simulation."""

    def __init__(self, config: SimulationConfig | None = None, *,
                 faults: Sequence[FaultAction] = (),
                 node_overrides: dict[int, dict] | None = None) -> None:
        config = config if config is not None else default_live_config()
        if config.substrate.kind != "live":
            raise ConfigError(
                "LiveCluster requires substrate.kind == 'live' "
                f"(got {config.substrate.kind!r}); use Simulation for "
                "the sim substrate")
        config.validate()
        if config.num_malicious or config.num_observers:
            raise ConfigError(
                "the live substrate runs honest full nodes only "
                "(num_malicious and num_observers must be 0)")
        if config.population.mode != "full":
            raise ConfigError(
                "the live substrate requires population mode 'full' "
                "(every process is one first-class node)")
        self.config = config
        self.params: ProtocolParams = config.params or LIVE_SMOKE_PARAMS
        self.num_nodes = config.num_users
        self.faults: tuple[FaultAction, ...] = tuple(faults)
        for action in self.faults:
            action.validate(self.num_nodes)
        unsupported = unsupported_live_kinds(self.faults)
        if unsupported:
            raise ConfigError(
                "fault kind(s) with no live realization: "
                + ", ".join(sorted(unsupported))
                + " (sim-only; run them on the sim substrate)")
        #: Per-node config overrides merged into the generated node
        #: config files — test hooks (``exit_at_start``) and tuning.
        self.node_overrides = dict(node_overrides or {})
        self.runtime_dir: Path | None = None
        self.merged_trace_path: Path | None = None
        self.results: dict[int, dict] = {}
        self.chains: dict[int, list] = {}
        self.rounds_run = 0
        #: Measured kills: ``{"node": i, "t": scenario_seconds}``.
        self.kill_log: list[dict] = []
        self._payments = 0
        #: Every trace file each node index wrote, in incarnation order.
        self._trace_paths: dict[int, list[str]] = {}
        self._expected_dead: set[int] = set()
        self._permanently_dead: set[int] = set()
        self._finished: set[int] = set()

    # -- Simulation-shaped surface --------------------------------------

    def submit_payments(self, count: int) -> None:
        """Queue ``count`` payments for the next :meth:`run_rounds`.

        Unlike the sim (which injects transactions directly), the live
        schedule is *replayed deterministically inside every node
        process* from the shared seed; this just records the count the
        ``start`` message will carry.
        """
        self._payments += count

    def run_rounds(self, rounds: int,
                   time_limit: float | None = None) -> None:
        """Spawn the cluster, run ``rounds`` rounds, collect results."""
        asyncio.run(self._run(rounds, time_limit))

    def all_chains_equal(self) -> bool:
        """Byte-identical committed chains on every reporting process."""
        blocks = [self.results[i]["blocks"] for i in sorted(self.results)]
        return bool(blocks) and all(b == blocks[0] for b in blocks[1:])

    def summary(self) -> dict:
        def total(stat: str) -> int:
            return sum(r["stats"].get(stat, 0)
                       for r in self.results.values())

        heights = {i: r["height"] for i, r in sorted(self.results.items())}
        return {
            "substrate": "live",
            "transport": self.config.substrate.transport,
            "nodes": self.num_nodes,
            "rounds": self.rounds_run,
            "payments": self._payments,
            "faults": [action.to_dict() for action in self.faults],
            "kills": list(self.kill_log),
            "missing_nodes": sorted(self._permanently_dead),
            "heights": heights,
            "chains_equal": self.all_chains_equal(),
            "tips": {i: r["tip"].hex()[:16]
                     for i, r in sorted(self.results.items())},
            "conformance_ok": all(r["conformance_ok"]
                                  for r in self.results.values()),
            "conformance_violations": sum(r["conformance_violations"]
                                          for r in self.results.values()),
            "trace_events_dropped": sum(r["dropped_events"]
                                        for r in self.results.values()),
            "wire_bytes_sent": total("wire_bytes_sent"),
            "messages_sent": total("messages_sent"),
            "rx_dropped": total("rx_dropped"),
            "garbage_frames": total("garbage_frames"),
            "reconnect_attempts": total("reconnect_attempts"),
            "reconnects": total("reconnects"),
            "fault_dropped_frames": total("fault_dropped_frames"),
            "catchup_served": total("catchup_served"),
            "catchup_adopted": total("catchup_adopted"),
            "per_node": {i: dict(r["stats"])
                         for i, r in sorted(self.results.items())},
            "merged_trace": (str(self.merged_trace_path)
                             if self.merged_trace_path else None),
            "runtime_dir": str(self.runtime_dir),
        }

    # -- orchestration --------------------------------------------------

    def _node_config(self, index: int, control, *,
                     incarnation: int = 0) -> dict:
        sub = self.config.substrate
        runtime_dir = str(self.runtime_dir)
        suffix = f"-r{incarnation}" if incarnation else ""
        cfg = {
            "index": index,
            "num_nodes": self.num_nodes,
            "seed": self.config.seed,
            "params": dataclasses.asdict(self.params),
            "transport": sub.transport,
            "runtime_dir": runtime_dir,
            "host": sub.host,
            "base_port": sub.base_port,
            "control": control,
            "initial_balance": self.config.initial_balance,
            "balances": self.config.balances,
            "trace": str(Path(runtime_dir)
                         / f"trace-{index}{suffix}.jsonl"),
            "connect_timeout": sub.connect_timeout,
            "drain_budget": sub.drain_budget,
            "rx_queue_limit": sub.rx_queue_limit,
            "use_admission": self.config.runtime.use_admission,
            "relay_damping": self.config.runtime.relay_damping,
            "incarnation": incarnation,
        }
        cfg.update(self.node_overrides.get(index, {}))
        return cfg

    def _log_tails(self) -> str:
        """Last lines of every node log — the post-mortem on failure."""
        pieces = []
        for path in sorted((self.runtime_dir or Path(".")).glob("node-*.log")):
            try:
                lines = path.read_text(errors="replace").splitlines()
            except OSError:
                continue
            tail = "\n".join(lines[-_LOG_TAIL_LINES:])
            if tail.strip():
                pieces.append(f"--- {path.name} ---\n{tail}")
        return "\n".join(pieces) if pieces else "(node logs empty)"

    async def _spawn(self, index: int, control, *,
                     incarnation: int = 0,
                     extra: dict | None = None) -> asyncio.subprocess.Process:
        """Write a node config, start its process, arm its watcher."""
        cfg = self._node_config(index, control, incarnation=incarnation)
        if extra:
            cfg.update(extra)
        suffix = f"-r{incarnation}" if incarnation else ""
        cfg_path = self.runtime_dir / f"node-{index}{suffix}.json"
        cfg_path.write_text(json.dumps(cfg, indent=1), encoding="utf-8")
        log = open(self.runtime_dir / f"node-{index}{suffix}.log", "wb")
        self._log_files.append(log)
        proc = await asyncio.create_subprocess_exec(
            sys.executable, "-m", "repro.live.node_main", str(cfg_path),
            stdout=log, stderr=log, env=self._env)
        self._procs.append(proc)
        self._procs_by_index[index] = proc
        self._trace_paths.setdefault(index, []).append(cfg["trace"])
        self._watchers.append(asyncio.create_task(
            self._watch(index, proc), name=f"watch-{index}"))
        return proc

    async def _watch(self, index: int, proc) -> None:
        """Fail-fast: an un-scripted process death aborts the run."""
        await proc.wait()
        if self._abort.done() or index in self._expected_dead:
            return
        if self._started and index not in self._finished:
            # A result frame may still be in flight; give it a moment.
            await asyncio.sleep(_EXIT_GRACE)
        if (self._abort.done() or index in self._expected_dead
                or index in self._finished):
            return
        self._abort.set_exception(RuntimeError(
            f"node {index} exited (rc={proc.returncode}) before "
            f"delivering a result"))

    async def _guarded(self, awaitable):
        """Await ``awaitable``, losing instantly to a fail-fast abort."""
        task = asyncio.ensure_future(awaitable)
        await asyncio.wait({task, self._abort},
                           return_when=asyncio.FIRST_COMPLETED)
        if self._abort.done() and not task.done():
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
            raise self._abort.exception()
        return await task

    async def _collect(self, index: int, stream: MessageStream,
                       deadline: float) -> dict | None:
        """One node's ``result``; ``None`` if it was scripted to die."""
        try:
            result = await stream.expect("result", timeout=deadline + 30.0)
        except ControlError:
            if index in self._expected_dead:
                return None
            raise
        self._finished.add(index)
        return result

    async def _admit(self, index: int, *, deadline: float,
                     rounds: int) -> None:
        """hello -> peers -> ready -> start for one (re)spawned node."""
        sub = self.config.substrate
        hello_index, address, stream, writer = await self._guarded(
            asyncio.wait_for(self._hello_queue.get(),
                             timeout=sub.connect_timeout))
        if hello_index != index:
            raise ControlError(
                f"expected hello from respawned node {index}, "
                f"got node {hello_index}")
        self._writers.append(writer)
        self._node_writers[index] = writer
        self._addresses[str(index)] = address
        await send_message(writer, {"type": "peers",
                                    "addresses": self._addresses,
                                    "neighbors": self._neighbors})
        await self._guarded(stream.expect("ready",
                                          timeout=sub.connect_timeout))
        self._expected_dead.discard(index)
        await send_message(writer, dict(self._start_message,
                                        deadline=deadline, rounds=rounds))
        self._collectors[index] = asyncio.create_task(
            self._collect(index, stream, deadline),
            name=f"collect-{index}-respawn")

    async def _crash_timeline(self, *, control, deadline: float,
                              rounds: int) -> None:
        """SIGKILL scripted victims; respawn + re-admit on window end."""
        actions = sorted(
            (action for action in self.faults if action.kind == "crash"),
            key=lambda action: action.start)
        loop = asyncio.get_running_loop()
        for action in actions:
            await asyncio.sleep(
                max(0.0, self._anchor + action.start - loop.time()))
            for index in action.nodes:
                self._expected_dead.add(index)
                if action.end is None:
                    self._permanently_dead.add(index)
                proc = self._procs_by_index[index]
                if proc.returncode is None:
                    proc.kill()
                self.kill_log.append(
                    {"node": index,
                     "t": loop.time() - self._anchor})
            if action.end is None:
                continue
            await asyncio.sleep(
                max(0.0, self._anchor + action.end - loop.time()))
            for index in action.nodes:
                extra: dict = {
                    "rejoin": True,
                    "clock_offset": loop.time() - self._anchor,
                }
                if self.config.substrate.transport == "tcp":
                    # Keep the advertised address valid: rebind the
                    # exact port the first incarnation listened on.
                    extra["rebind_port"] = self._addresses[str(index)][1]
                incarnation = len(self._trace_paths[index])
                await self._spawn(index, control,
                                  incarnation=incarnation, extra=extra)
                await self._admit(index, deadline=deadline, rounds=rounds)

    async def _run(self, rounds: int, time_limit: float | None) -> None:
        sub = self.config.substrate
        n = self.num_nodes
        self.runtime_dir = Path(
            sub.runtime_dir or tempfile.mkdtemp(prefix="repro-live-"))
        self.runtime_dir.mkdir(parents=True, exist_ok=True)
        loop = asyncio.get_running_loop()
        self._abort: asyncio.Future = loop.create_future()
        self._started = False
        self._hello_queue: asyncio.Queue = asyncio.Queue()
        self._procs: list[asyncio.subprocess.Process] = []
        self._procs_by_index: dict[int, asyncio.subprocess.Process] = {}
        self._log_files: list = []
        self._watchers: list[asyncio.Task] = []
        self._writers: list[asyncio.StreamWriter] = []
        self._node_writers: dict[int, asyncio.StreamWriter] = {}
        self._collectors: dict[int, asyncio.Task] = {}
        self._neighbors = neighbor_map(n,
                                       self.config.network.peers_per_node)

        async def on_connect(reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
            stream = MessageStream(reader)
            try:
                hello = await stream.expect("hello",
                                            timeout=sub.connect_timeout)
            except ControlError:
                writer.close()
                return
            await self._hello_queue.put(
                (hello["index"], hello["address"], stream, writer))

        if sub.transport == "uds":
            control = str(self.runtime_dir / "ctrl.sock")
            Path(control).unlink(missing_ok=True)
            server = await asyncio.start_unix_server(on_connect,
                                                     path=control)
        else:
            server = await asyncio.start_server(on_connect, host=sub.host,
                                                port=0)
            control = [sub.host, server.sockets[0].getsockname()[1]]

        timeline: asyncio.Task | None = None
        try:
            env = dict(os.environ)
            import repro
            src_root = str(Path(repro.__file__).resolve().parents[1])
            env["PYTHONPATH"] = (
                src_root + os.pathsep + env["PYTHONPATH"]
                if env.get("PYTHONPATH") else src_root)
            self._env = env
            for i in range(n):
                await self._spawn(i, control)

            self._addresses = {}
            streams: dict[int, MessageStream] = {}
            for _ in range(n):
                index, address, stream, writer = await self._guarded(
                    asyncio.wait_for(self._hello_queue.get(),
                                     timeout=sub.connect_timeout))
                streams[index] = stream
                self._writers.append(writer)
                self._node_writers[index] = writer
                self._addresses[str(index)] = address
            for index in range(n):
                await send_message(self._node_writers[index],
                                   {"type": "peers",
                                    "addresses": self._addresses,
                                    "neighbors": self._neighbors})
            for index in range(n):
                await self._guarded(streams[index].expect(
                    "ready", timeout=sub.connect_timeout))

            per_round = (self.params.lambda_block
                         + self.params.lambda_step * self.params.max_steps)
            deadline = time_limit or per_round * (rounds + 1)
            self._start_message = {
                "type": "start",
                "payments": self._payments,
                "rounds": rounds,
                "deadline": deadline,
                "faults": [action.to_dict() for action in self.faults],
            }
            # Scenario t=0 is pinned *before* the start broadcast: every
            # node's clock origin is therefore strictly later, so node
            # timestamps always trail coordinator-measured kill times —
            # the invariant the merged-trace event ordering rests on.
            self._anchor = loop.time()
            self._started = True
            for index in range(n):
                await send_message(self._node_writers[index],
                                   self._start_message)
            for index in range(n):
                self._collectors[index] = asyncio.create_task(
                    self._collect(index, streams[index], deadline),
                    name=f"collect-{index}")
            timeline = asyncio.create_task(
                self._crash_timeline(control=control, deadline=deadline,
                                     rounds=rounds),
                name="crash-timeline")
            await self._guarded(timeline)
            results: dict[int, dict] = {}
            for index in range(n):
                result = await self._guarded(self._collectors[index])
                if result is not None:
                    results[index] = result
            # Every result is in: release the lingering processes (they
            # keep serving catch-up to late rejoiners until told to stop).
            for index, writer in self._node_writers.items():
                if index in self._permanently_dead:
                    continue
                with contextlib.suppress(Exception):
                    await send_message(writer, {"type": "stop"})
            live_procs = [p for p in self._procs if p.returncode is None]
            await asyncio.wait_for(
                asyncio.gather(*(p.wait() for p in live_procs)),
                timeout=30.0)
        except Exception as exc:
            raise RuntimeError(
                f"live cluster failed during orchestration: {exc!r}\n"
                f"{self._log_tails()}") from exc
        finally:
            if timeline is not None and not timeline.done():
                timeline.cancel()
            for task in self._collectors.values():
                if not task.done():
                    task.cancel()
            for task in self._watchers:
                if not task.done():
                    task.cancel()
            if self._abort.done():
                self._abort.exception()  # mark retrieved
            for proc in self._procs:
                if proc.returncode is None:
                    proc.kill()
            for writer in self._writers:
                writer.close()
            server.close()
            await server.wait_closed()
            for log in self._log_files:
                log.close()

        self.results = results
        self.rounds_run = rounds
        self.chains = {
            index: [decode_block(raw) for raw in result["blocks"]]
            for index, result in results.items()
        }
        self.merged_trace_path = self._merge_traces()

    # -- trace merging --------------------------------------------------

    def _synthesize_crash_events(self, index: int, events: list[dict],
                                 kill_t: float) -> list[dict]:
        """What a SIGKILLed incarnation could not write for itself.

        Closes every step it left open (``interrupted`` exits, the same
        shape :func:`repro.baplus.voting.interrupt_open_steps`
        emits) and then records the crash — exactly the order the
        conformance machine requires so open intervals are not flagged
        as unclosed.
        """
        open_steps: dict[tuple[int, int], float] = {}
        last_round = 1
        for record in events:
            kind = record.get("kind")
            if kind == "step_enter":
                open_steps[(record["round"], record["step"])] = \
                    float(record.get("t", kill_t))
            elif kind == "step_exit":
                open_steps.pop((record["round"], record["step"]), None)
            elif kind == "round_start":
                last_round = record["round"]
        synthesized = [
            {"t": kill_t, "kind": "step_exit", "node": index,
             "round": round_number, "step": step,
             "seconds": max(0.0, kill_t - entered_t),
             "timed_out": True, "interrupted": True}
            for (round_number, step), entered_t
            in sorted(open_steps.items())
        ]
        synthesized.append({"t": kill_t, "kind": "node_crashed",
                            "node": index, "round": last_round})
        return synthesized

    def _merge_traces(self) -> Path:
        """One time-sorted JSONL trace across all nodes and incarnations.

        Events keep their per-node ``node`` field (the conformance
        checker demultiplexes on it). Victim incarnations are read with
        truncation tolerance (a SIGKILL can land mid-write), closed out
        with synthesized crash events at the measured kill times, and
        followed by their respawn's events; scripted faults contribute
        one ``fault_applied``/``fault_cleared`` pair each, mirroring
        the sim injector. The merged snapshot carries only the summed
        loss counter, which is what completeness checks read.
        """
        events: list[dict] = []
        dropped = 0
        kills_by_node: dict[int, list[float]] = {}
        for record in self.kill_log:
            kills_by_node.setdefault(record["node"], []).append(record["t"])
        for index in sorted(self._trace_paths):
            kills = kills_by_node.get(index, [])
            for incarnation, path in enumerate(self._trace_paths[index]):
                try:
                    node_events, snapshot = read_trace(
                        path, tolerate_truncation=True)
                except (OSError, ValueError):
                    node_events, snapshot = [], None
                events.extend(node_events)
                if snapshot:
                    dropped += int(snapshot.get("dropped_events", 0) or 0)
                    gauges = snapshot.get("gauges", {})
                    dropped += int(gauges.get("obs.sink_dropped", 0) or 0)
                if incarnation < len(kills):
                    events.extend(self._synthesize_crash_events(
                        index, node_events, kills[incarnation]))
        for action in self.faults:
            window = [action.start, action.end]
            events.append({"t": action.start, "kind": "fault_applied",
                           "fault": action.kind,
                           "nodes": list(action.nodes), "window": window})
            if action.end is not None:
                events.append({"t": action.end, "kind": "fault_cleared",
                               "fault": action.kind,
                               "nodes": list(action.nodes),
                               "window": window})
        events.sort(key=lambda record: float(record.get("t", 0.0)))
        out = Path(self.runtime_dir) / "merged.jsonl"
        with out.open("w", encoding="utf-8") as handle:
            for record in events:
                handle.write(json.dumps({"type": "event", **record},
                                        separators=(",", ":")) + "\n")
            handle.write(json.dumps(
                {"type": "snapshot",
                 "metrics": {"dropped_events": dropped}},
                separators=(",", ":")) + "\n")
        return out
