"""Coordinator harness for a live cluster of node processes.

:class:`LiveCluster` mirrors :class:`repro.experiments.harness.Simulation`
for the live substrate: build it from a :class:`SimulationConfig` whose
``substrate.kind`` is ``"live"``, queue payments, call
:meth:`run_rounds`, then read ``chains`` / :meth:`all_chains_equal` /
:meth:`summary` — same verbs, real processes underneath.

The coordinator owns a control socket (Unix domain or TCP, matching the
gossip transport), spawns one ``python -m repro.live.node_main`` process
per node, and walks the conversation in :mod:`repro.live.control`:
collect ``hello`` (listen addresses), broadcast ``peers``, await
``ready`` from everyone (all gossip links up — no node starts while a
peer is still dialing), broadcast ``start``, then await ``result``
messages carrying each node's chain as encoded block bytes plus its
trace path and transport stats. Per-node JSONL traces are merged into
one time-sorted file suitable for ``python -m repro.conformance``.

Every per-node artifact (configs, logs, traces, sockets, merged trace)
lives under one runtime directory so a failed run leaves a complete
post-mortem behind.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import sys
import tempfile
from pathlib import Path

from repro.common.params import TEST_PARAMS, ProtocolParams
from repro.experiments.config import ConfigError, SimulationConfig, SubstrateConfig
from repro.live.control import ControlError, MessageStream, send_message
from repro.network.wire import decode_block
from repro.obs.sink import read_trace

#: TEST_PARAMS with all protocol timeouts shrunk 4x: in live mode the
#: lambdas are *wall-clock seconds*, and a smoke cluster on loopback
#: needs milliseconds, not the sim's calibrated WAN allowances. Committee
#: sizes are untouched, so the 5-node x initial_balance=40 design point
#: (W = 200) carries over from the sim test fixture.
LIVE_SMOKE_PARAMS = dataclasses.replace(
    TEST_PARAMS,
    lambda_priority=0.25,
    lambda_block=1.5,
    lambda_step=0.75,
    lambda_stepvar=0.25,
)

_LOG_TAIL_LINES = 25


def default_live_config(num_nodes: int = 5, *, seed: int = 7,
                        transport: str = "uds",
                        runtime_dir: str | None = None) -> SimulationConfig:
    """A ready-to-run live cluster config (smoke-test scale)."""
    return SimulationConfig(
        num_users=num_nodes,
        params=LIVE_SMOKE_PARAMS,
        seed=seed,
        initial_balance=40,
        substrate=SubstrateConfig(kind="live", transport=transport,
                                  runtime_dir=runtime_dir),
    )


class LiveCluster:
    """N node processes + this coordinator, driven like a Simulation."""

    def __init__(self, config: SimulationConfig | None = None) -> None:
        config = config if config is not None else default_live_config()
        if config.substrate.kind != "live":
            raise ConfigError(
                "LiveCluster requires substrate.kind == 'live' "
                f"(got {config.substrate.kind!r}); use Simulation for "
                "the sim substrate")
        config.validate()
        if config.num_malicious or config.num_observers:
            raise ConfigError(
                "the live substrate runs honest full nodes only "
                "(num_malicious and num_observers must be 0)")
        if config.population.mode != "full":
            raise ConfigError(
                "the live substrate requires population mode 'full' "
                "(every process is one first-class node)")
        self.config = config
        self.params: ProtocolParams = config.params or LIVE_SMOKE_PARAMS
        self.num_nodes = config.num_users
        self.runtime_dir: Path | None = None
        self.merged_trace_path: Path | None = None
        self.results: dict[int, dict] = {}
        self.chains: dict[int, list] = {}
        self.rounds_run = 0
        self._payments = 0

    # -- Simulation-shaped surface --------------------------------------

    def submit_payments(self, count: int) -> None:
        """Queue ``count`` payments for the next :meth:`run_rounds`.

        Unlike the sim (which injects transactions directly), the live
        schedule is *replayed deterministically inside every node
        process* from the shared seed; this just records the count the
        ``start`` message will carry.
        """
        self._payments += count

    def run_rounds(self, rounds: int,
                   time_limit: float | None = None) -> None:
        """Spawn the cluster, run ``rounds`` rounds, collect results."""
        asyncio.run(self._run(rounds, time_limit))

    def all_chains_equal(self) -> bool:
        """Byte-identical committed chains on every process."""
        blocks = [self.results[i]["blocks"] for i in sorted(self.results)]
        return bool(blocks) and all(b == blocks[0] for b in blocks[1:])

    def summary(self) -> dict:
        heights = {i: r["height"] for i, r in sorted(self.results.items())}
        return {
            "substrate": "live",
            "transport": self.config.substrate.transport,
            "nodes": self.num_nodes,
            "rounds": self.rounds_run,
            "payments": self._payments,
            "heights": heights,
            "chains_equal": self.all_chains_equal(),
            "tips": {i: r["tip"].hex()[:16]
                     for i, r in sorted(self.results.items())},
            "conformance_ok": all(r["conformance_ok"]
                                  for r in self.results.values()),
            "conformance_violations": sum(r["conformance_violations"]
                                          for r in self.results.values()),
            "trace_events_dropped": sum(r["dropped_events"]
                                        for r in self.results.values()),
            "wire_bytes_sent": sum(r["stats"]["wire_bytes_sent"]
                                   for r in self.results.values()),
            "messages_sent": sum(r["stats"]["messages_sent"]
                                 for r in self.results.values()),
            "rx_dropped": sum(r["stats"]["rx_dropped"]
                              for r in self.results.values()),
            "garbage_frames": sum(r["stats"]["garbage_frames"]
                                  for r in self.results.values()),
            "merged_trace": (str(self.merged_trace_path)
                             if self.merged_trace_path else None),
            "runtime_dir": str(self.runtime_dir),
        }

    # -- orchestration --------------------------------------------------

    def _node_config(self, index: int, control) -> dict:
        sub = self.config.substrate
        runtime_dir = str(self.runtime_dir)
        return {
            "index": index,
            "num_nodes": self.num_nodes,
            "seed": self.config.seed,
            "params": dataclasses.asdict(self.params),
            "transport": sub.transport,
            "runtime_dir": runtime_dir,
            "host": sub.host,
            "base_port": sub.base_port,
            "control": control,
            "initial_balance": self.config.initial_balance,
            "trace": str(Path(runtime_dir) / f"trace-{index}.jsonl"),
            "connect_timeout": sub.connect_timeout,
            "drain_budget": sub.drain_budget,
            "rx_queue_limit": sub.rx_queue_limit,
            "use_admission": self.config.runtime.use_admission,
            "relay_damping": self.config.runtime.relay_damping,
        }

    def _log_tails(self) -> str:
        """Last lines of every node log — the post-mortem on failure."""
        pieces = []
        for path in sorted((self.runtime_dir or Path(".")).glob("node-*.log")):
            try:
                lines = path.read_text(errors="replace").splitlines()
            except OSError:
                continue
            tail = "\n".join(lines[-_LOG_TAIL_LINES:])
            if tail.strip():
                pieces.append(f"--- {path.name} ---\n{tail}")
        return "\n".join(pieces) if pieces else "(node logs empty)"

    async def _run(self, rounds: int, time_limit: float | None) -> None:
        sub = self.config.substrate
        n = self.num_nodes
        self.runtime_dir = Path(
            sub.runtime_dir or tempfile.mkdtemp(prefix="repro-live-"))
        self.runtime_dir.mkdir(parents=True, exist_ok=True)

        hello_queue: asyncio.Queue = asyncio.Queue()

        async def on_connect(reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
            stream = MessageStream(reader)
            try:
                hello = await stream.expect("hello",
                                            timeout=sub.connect_timeout)
            except ControlError:
                writer.close()
                return
            await hello_queue.put(
                (hello["index"], hello["address"], stream, writer))

        if sub.transport == "uds":
            control = str(self.runtime_dir / "ctrl.sock")
            server = await asyncio.start_unix_server(on_connect,
                                                     path=control)
        else:
            server = await asyncio.start_server(on_connect, host=sub.host,
                                                port=0)
            control = [sub.host, server.sockets[0].getsockname()[1]]

        procs: list[asyncio.subprocess.Process] = []
        log_files = []
        nodes: dict[int, tuple[MessageStream, asyncio.StreamWriter]] = {}
        try:
            env = dict(os.environ)
            import repro
            src_root = str(Path(repro.__file__).resolve().parents[1])
            env["PYTHONPATH"] = (
                src_root + os.pathsep + env["PYTHONPATH"]
                if env.get("PYTHONPATH") else src_root)
            for i in range(n):
                cfg_path = self.runtime_dir / f"node-{i}.json"
                cfg_path.write_text(
                    json.dumps(self._node_config(i, control), indent=1),
                    encoding="utf-8")
                log = open(self.runtime_dir / f"node-{i}.log", "wb")
                log_files.append(log)
                procs.append(await asyncio.create_subprocess_exec(
                    sys.executable, "-m", "repro.live.node_main",
                    str(cfg_path), stdout=log, stderr=log, env=env))

            addresses: dict[str, object] = {}
            for _ in range(n):
                index, address, stream, writer = await asyncio.wait_for(
                    hello_queue.get(), timeout=sub.connect_timeout)
                nodes[index] = (stream, writer)
                addresses[str(index)] = address
            for index in range(n):
                await send_message(nodes[index][1],
                                   {"type": "peers",
                                    "addresses": addresses})
            for index in range(n):
                await nodes[index][0].expect("ready",
                                             timeout=sub.connect_timeout)

            per_round = (self.params.lambda_block
                         + self.params.lambda_step * self.params.max_steps)
            deadline = time_limit or per_round * (rounds + 1)
            for index in range(n):
                await send_message(nodes[index][1],
                                   {"type": "start",
                                    "payments": self._payments,
                                    "rounds": rounds,
                                    "deadline": deadline})
            results: dict[int, dict] = {}
            for index in range(n):
                results[index] = await nodes[index][0].expect(
                    "result", timeout=deadline + 30.0)
            await asyncio.wait_for(
                asyncio.gather(*(p.wait() for p in procs)), timeout=30.0)
        except Exception as exc:
            raise RuntimeError(
                f"live cluster failed during orchestration: {exc!r}\n"
                f"{self._log_tails()}") from exc
        finally:
            for proc in procs:
                if proc.returncode is None:
                    proc.kill()
            for _, writer in nodes.values():
                writer.close()
            server.close()
            await server.wait_closed()
            for log in log_files:
                log.close()

        self.results = results
        self.rounds_run = rounds
        self.chains = {
            index: [decode_block(raw) for raw in result["blocks"]]
            for index, result in results.items()
        }
        self.merged_trace_path = self._merge_traces(
            [results[index]["trace"] for index in sorted(results)])

    # -- trace merging --------------------------------------------------

    def _merge_traces(self, paths: list[str]) -> Path:
        """One time-sorted JSONL trace across all nodes.

        Events keep their per-node ``node`` field (the conformance
        checker demultiplexes on it); the merged snapshot carries only
        the summed loss counter, which is what completeness checks read.
        """
        events: list[dict] = []
        dropped = 0
        for path in paths:
            node_events, snapshot = read_trace(path)
            events.extend(node_events)
            if snapshot:
                dropped += int(snapshot.get("dropped_events", 0) or 0)
                gauges = snapshot.get("gauges", {})
                dropped += int(gauges.get("obs.sink_dropped", 0) or 0)
        events.sort(key=lambda record: float(record.get("t", 0.0)))
        out = Path(self.runtime_dir) / "merged.jsonl"
        with out.open("w", encoding="utf-8") as handle:
            for record in events:
                handle.write(json.dumps({"type": "event", **record},
                                        separators=(",", ":")) + "\n")
            handle.write(json.dumps(
                {"type": "snapshot",
                 "metrics": {"dropped_events": dropped}},
                separators=(",", ":")) + "\n")
        return out
