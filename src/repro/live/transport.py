"""Socket-backed gossip transport for live node processes.

:class:`LiveTransport` exposes the exact
:class:`repro.network.gossip.NetworkInterface` surface the node agent
and admission gate assign into (``broadcast``, ``relay_policy``,
``ingress``, ``disconnected``, the metric counters), but moves bytes
over real stream connections: one :class:`PeerLink` per peer, each with
a framed reader task and a queued writer task.

Delivery semantics mirror the sim interface deliberately —
validate-before-relay (§8.4), dedup by ``msg_id`` *after* the ingress
gate (a rejected copy does not poison a later clean one), synchronous
dispatch through ``relay_policy``. Two live-only concerns are added:

* **Global msg_id uniqueness** — every process counts envelopes from
  zero, so locally-originated envelopes are re-stamped with an
  index-namespaced id (``(index << 40) | local_seq``) at broadcast;
  relayed envelopes keep their origin's id (that is what dedup keys on).
  The sequence space is further partitioned by process *incarnation*,
  so a respawned node never reuses ids its previous life already
  burned into peers' dedup sets.
* **Bounded, budgeted ingestion** — socket readers append to a bounded
  receive queue and schedule a drain on the clock; each drain processes
  at most ``drain_budget`` envelopes before rescheduling itself, so one
  chatty peer cannot starve protocol timers.

Two robustness hooks ride on the link layer (both optional, both
``None`` in a clean run):

* **Fault plane** — :class:`repro.live.faults.LiveFaultPlane` assigned
  into :attr:`LiveTransport.fault_plane` injects scripted per-link
  effects: severed peers (partitions/DoS) are refused inbound and
  skipped outbound, lossy links drop frames probabilistically at send
  time, delayed links stall the writer queue's flush.
* **Link-down notification** — when a link's reader or writer dies
  (peer crashed, connection reset), :attr:`LiveTransport.on_link_down`
  fires once with the peer index so the owner can schedule a reconnect
  with capped exponential backoff.
"""

from __future__ import annotations

import asyncio
import dataclasses
from collections import deque
from typing import Callable

from repro.live.clock import LiveClock
from repro.network.message import Envelope
from repro.network.wire import (
    FrameDecoder,
    WireError,
    decode_envelope,
    encode_envelope,
    encode_frame,
)

#: Bits reserved for the per-process envelope sequence number; the node
#: index occupies the bits above, making ids globally unique without
#: coordination for clusters up to 2**23 nodes and 2**40 messages.
MSG_ID_SEQ_BITS = 40


class PeerLink:
    """One live connection: framed reader + queued writer, both tasks."""

    def __init__(self, transport: "LiveTransport", peer: int,
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.transport = transport
        self.peer = peer
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder()
        self.closed = False
        self._down_notified = False
        self._tasks: list[asyncio.Task] = []
        #: Per-peer outbound queue: broadcast never blocks on a slow
        #: peer; its writer task drains the queue at the socket's pace.
        self._outbound: asyncio.Queue[bytes | None] = asyncio.Queue()

    def start(self) -> None:
        self._tasks = [
            asyncio.create_task(self._read_loop(),
                                name=f"link-read-{self.peer}"),
            asyncio.create_task(self._write_loop(),
                                name=f"link-write-{self.peer}"),
        ]

    def send(self, frame: bytes) -> None:
        if not self.closed:
            self._outbound.put_nowait(frame)

    async def _write_loop(self) -> None:
        try:
            while True:
                frame = await self._outbound.get()
                if frame is None:
                    break
                plane = self.transport.fault_plane
                if plane is not None:
                    delay = plane.outbound_delay(self.peer)
                    if delay > 0.0:
                        # Delayed flush: the whole queue behind this
                        # frame stalls too (head-of-line), which is what
                        # a congested real link does.
                        plane.delayed_frames += 1
                        await asyncio.sleep(delay)
                self.writer.write(frame)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.closed = True
            self.transport._link_lost(self)

    async def _read_loop(self) -> None:
        try:
            while True:
                data = await self.reader.read(65536)
                if not data:
                    break
                for payload in self.decoder.feed(data):
                    self.transport._on_payload(self.peer, payload)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except WireError:
            # Desynced or malicious stream: the frame boundary is gone
            # for good, so the connection is dropped, not resynced.
            self.transport.garbage_streams += 1
        finally:
            self.closed = True
            self.transport._link_lost(self)

    async def close(self) -> None:
        self.closed = True
        self._outbound.put_nowait(None)
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except Exception:
            pass


class LiveTransport:
    """A node's gossip attachment over real sockets.

    Satisfies :class:`repro.substrate.Transport`; the node wires in via
    ``relay_policy`` and the admission gate via ``ingress``, exactly as
    with the sim interface.
    """

    def __init__(self, index: int, clock: LiveClock, *,
                 drain_budget: int = 128, rx_queue_limit: int = 4096,
                 incarnation: int = 0, obs=None) -> None:
        self.index = index
        self.clock = clock
        self.obs = obs
        self.neighbors: list[int] = []
        self.inbox: deque[Envelope] = deque()
        self.receive_signal = clock.signal()
        self.relay_policy: Callable[[Envelope], bool] = lambda envelope: True
        self.ingress: Callable[[Envelope, int], bool] | None = None
        self.disconnected = False
        #: Logical bytes (the calibrated envelope sizes the sim charges),
        #: counted per peer transmission — same accounting as the sim
        #: interface, so cost experiments read either substrate alike.
        self.bytes_sent = 0
        self.messages_sent = 0
        #: Actual frame bytes handed to the sockets (wire truth).
        self.wire_bytes_sent = 0
        self.drain_budget = drain_budget
        self.rx_queue_limit = rx_queue_limit
        self.rx_dropped = 0
        self.garbage_frames = 0
        self.garbage_streams = 0
        #: Optional :class:`repro.live.faults.LiveFaultPlane` injecting
        #: scripted partition/loss/delay effects on this node's links.
        self.fault_plane = None
        #: Optional :class:`repro.live.catchup.LiveChainSync`, referenced
        #: only so :meth:`stats` can report its counters.
        self.chain_sync = None
        #: Callback fired (once per link) when a link's reader or writer
        #: dies and the peer is neither severed nor the whole transport
        #: closing — the owner decides whether to redial.
        self.on_link_down: Callable[[int], None] | None = None
        #: Peers currently refused by the fault plane (partition/DoS):
        #: no sends, inbound dropped, reconnects rejected.
        self.severed: set[int] = set()
        #: Dial attempts and successes after a lost link (the owner's
        #: backoff loop increments these; counted here so they travel
        #: with the rest of the transport stats).
        self.reconnect_attempts = 0
        self.reconnects = 0
        self._links: dict[int, PeerLink] = {}
        self._seen: set[int] = set()
        self._rx: deque[tuple[int, Envelope, bytes]] = deque()
        self._drain_scheduled = False
        # A respawned process must not reuse its predecessor's msg_ids —
        # peers hold them in their dedup sets and would silently drop
        # the newcomer's first envelopes (including its catch-up
        # requests). Partition the 40-bit sequence space by incarnation:
        # 2**8 lives of 2**32 messages each.
        self._local_seq = int(incarnation) << 32

    # -- link management ------------------------------------------------

    @staticmethod
    def _close_soon(link: PeerLink) -> None:
        """Schedule an async link close; drop it when no loop runs.

        Outside a running event loop (unit tests poking the transport
        synchronously) there is nothing to await the close — abandoning
        it is fine, no socket exists there.
        """
        coro = link.close()
        try:
            asyncio.ensure_future(coro)
        except RuntimeError:
            coro.close()

    def add_link(self, link: PeerLink) -> None:
        if link.peer in self.severed:
            # A peer the fault plane severed cannot slip back in through
            # a fresh handshake; callers check first, this is the net.
            self._close_soon(link)
            return
        stale = self._links.get(link.peer)
        if stale is not None and stale is not link:
            # Reconnect replaced a dead (or half-dead) link: retire the
            # old tasks so their teardown cannot clobber the new link.
            self._close_soon(stale)
        self._links[link.peer] = link
        self.neighbors = sorted(self._links)

    def _link_lost(self, link: PeerLink) -> None:
        if link._down_notified:
            return
        link._down_notified = True
        if (self._links.get(link.peer) is link and not self.disconnected
                and link.peer not in self.severed
                and self.on_link_down is not None):
            self.on_link_down(link.peer)

    def sever_peer(self, peer: int) -> None:
        """Fault plane: cut ``peer`` off — close, refuse, stay silent."""
        self.severed.add(peer)
        link = self._links.pop(peer, None)
        self.neighbors = sorted(self._links)
        if link is not None:
            self._close_soon(link)

    def release_peer(self, peer: int) -> None:
        """Fault plane: lift a sever; the owner may now reconnect."""
        self.severed.discard(peer)

    @property
    def links(self) -> dict[int, PeerLink]:
        return self._links

    async def close(self) -> None:
        self.disconnected = True
        for link in self._links.values():
            await link.close()

    # -- sending --------------------------------------------------------

    def broadcast(self, envelope: Envelope) -> None:
        """Originate ``envelope``: re-stamp its id, frame, send to all."""
        if self.disconnected:
            return
        stamped = dataclasses.replace(
            envelope,
            msg_id=(self.index << MSG_ID_SEQ_BITS) | self._local_seq)
        self._local_seq += 1
        self._seen.add(stamped.msg_id)
        self._send_frames(encode_frame(encode_envelope(stamped)),
                          stamped, exclude=None)

    def _send_frames(self, frame: bytes, envelope: Envelope,
                     exclude: int | None) -> None:
        metrics = self.obs.metrics if self.obs is not None else None
        plane = self.fault_plane
        if plane is not None:
            # Frames this node would have sent over links the fault
            # plane severed: counted so a partition window shows up in
            # the fault-drop stats even though the link itself is gone.
            for peer in self.severed:
                if peer != exclude:
                    plane.dropped_frames += 1
        for peer, link in list(self._links.items()):
            if peer == exclude or link.closed or peer in self.severed:
                continue
            if plane is not None and plane.outbound_drop(peer):
                continue
            link.send(frame)
            self.bytes_sent += envelope.size
            self.messages_sent += 1
            self.wire_bytes_sent += len(frame)
            if metrics is not None:
                metrics.inc("gossip.sent." + envelope.kind)
                metrics.inc("gossip.sent_bytes." + envelope.kind,
                            envelope.size)

    # -- receiving ------------------------------------------------------

    def _on_payload(self, peer: int, payload: bytes) -> None:
        """Socket reader handoff: decode, enqueue, schedule a drain.

        Runs on the asyncio side (never inside a protocol callback);
        protocol code only ever sees envelopes from :meth:`_drain`,
        which the clock fires like any other event.
        """
        if peer in self.severed:
            plane = self.fault_plane
            if plane is not None:
                plane.dropped_frames += 1
            return
        try:
            envelope = decode_envelope(payload)
        except WireError:
            self.garbage_frames += 1
            return
        if len(self._rx) >= self.rx_queue_limit:
            self._rx.popleft()
            self.rx_dropped += 1
        self._rx.append((peer, envelope, payload))
        if not self._drain_scheduled:
            self._drain_scheduled = True
            self.clock.schedule_now(self._drain)
        self.clock.kick()

    def _drain(self) -> None:
        self._drain_scheduled = False
        budget = self.drain_budget
        while self._rx and budget > 0:
            budget -= 1
            peer, envelope, payload = self._rx.popleft()
            self._deliver(peer, envelope, payload)
        if self._rx and not self._drain_scheduled:
            self._drain_scheduled = True
            self.clock.schedule_now(self._drain)

    def _deliver(self, from_peer: int, envelope: Envelope,
                 payload: bytes) -> None:
        """Mirror of ``NetworkInterface._deliver``, relay over sockets."""
        metrics = self.obs.metrics if self.obs is not None else None
        if self.disconnected or envelope.msg_id in self._seen:
            if metrics is not None and not self.disconnected:
                metrics.inc("gossip.dup_dropped")
            return
        ingress = self.ingress
        if ingress is not None and not ingress(envelope, from_peer):
            # Rejected before joining the seen-set: a later clean copy
            # of the same message can still be accepted.
            if metrics is not None:
                metrics.inc("gossip.ingress_rejected")
            return
        self._seen.add(envelope.msg_id)
        self.inbox.append(envelope)
        self.receive_signal.pulse()
        if metrics is not None:
            metrics.inc("gossip.recv." + envelope.kind)
            metrics.inc("gossip.recv_bytes." + envelope.kind, envelope.size)
        if self.relay_policy(envelope):
            # Forward the original payload bytes (identity relay, no
            # re-encode); the origin's msg_id rides along for dedup.
            self._send_frames(encode_frame(payload), envelope,
                              exclude=from_peer)
            if metrics is not None:
                metrics.inc("gossip.relayed." + envelope.kind)

    # -- maintenance (NetworkInterface parity) --------------------------

    def prune_seen(self, watermark: int, horizon_rounds: int) -> None:
        """Live dedup ids are origin-namespaced, not globally monotone,
        so the sim's watermark pruning does not apply; the seen-set is
        bounded by the run length instead (cleared with the process)."""

    def stats(self) -> dict:
        plane = self.fault_plane
        sync = self.chain_sync
        return {
            "bytes_sent": self.bytes_sent,
            "messages_sent": self.messages_sent,
            "wire_bytes_sent": self.wire_bytes_sent,
            "rx_dropped": self.rx_dropped,
            "garbage_frames": self.garbage_frames,
            "garbage_streams": self.garbage_streams,
            "inbox_depth": len(self.inbox),
            "links": len(self._links),
            "reconnect_attempts": self.reconnect_attempts,
            "reconnects": self.reconnects,
            "fault_dropped_frames": (plane.dropped_frames
                                     if plane is not None else 0),
            "fault_delayed_frames": (plane.delayed_frames
                                     if plane is not None else 0),
            "catchup_served": sync.served if sync is not None else 0,
            "catchup_adopted": sync.adopted if sync is not None else 0,
            "catchup_requests": (sync.requests_sent
                                 if sync is not None else 0),
        }
