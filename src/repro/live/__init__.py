"""Live substrate: real OS processes speaking the wire format over sockets.

The second execution substrate beside :mod:`repro.sim` (see
:mod:`repro.substrate` for the API both satisfy). Each node is its own
process running :class:`~repro.live.clock.LiveClock` — the discrete-event
kernel paced against the wall clock inside an asyncio loop — with a
:class:`~repro.live.transport.LiveTransport` exchanging length-prefixed
:mod:`repro.network.wire` frames over TCP or Unix domain sockets. The
node agent, BA*, sortition, admission, damping, and obs layers run
**unchanged**.

Entry points:

* :class:`~repro.live.cluster.LiveCluster` — the harness mirroring
  :class:`~repro.experiments.harness.Simulation`: spawns N node
  processes plus a coordinator, submits payments, runs R rounds, and
  collects chains and JSONL traces over a control socket.
* ``python -m repro.live`` — CLI wrapper around ``LiveCluster``.
* ``python -m repro.live.node_main <config.json>`` — one node process
  (spawned by the cluster; not usually run by hand).

Wall-clock numbers from this substrate are **not comparable** to the
virtual-time numbers from ``repro.sim`` — see ``docs/LIVE_MODE.md``.
"""

from repro.live.clock import LiveClock
from repro.live.cluster import LiveCluster, LIVE_SMOKE_PARAMS
from repro.live.transport import LiveTransport

__all__ = ["LiveClock", "LiveCluster", "LiveTransport",
           "LIVE_SMOKE_PARAMS"]
